(* Tests for lib/tracecheck: the wire-trace recorder (monotone timestamps,
   byte budget, JSONL export) and the offline linearizability audit
   (valid concurrent histories accepted, each seeded violation class
   rejected with a minimized subhistory, truncation and search-budget
   verdicts), plus end-to-end capture through Store.Shared, Rpc.Node,
   Fleet and a chaos campaign. *)

module T = Tracecheck.Trace
module A = Tracecheck.Audit

let e ts ev = { T.ts; src = "test"; ev }
let inv ts id op = e ts (T.Invoke { id; client = 0; op })
let resp ts id outcome = e ts (T.Respond { id; outcome })

let verdict = Alcotest.testable (Fmt.of_to_string A.verdict_name) ( = )

(* {2 Recorder} *)

let test_recorder_orders_and_counts () =
  let r = T.Recorder.create () in
  let id1 = T.Recorder.invoke r ~src:"a" (T.Put { key = "k"; value = "v" }) in
  let id2 = T.Recorder.invoke r ~src:"b" (T.Get { key = "k" }) in
  T.Recorder.respond r ~src:"a" ~id:id1 T.Acked;
  T.Recorder.mark r ~src:"a" ~node:2 T.Crash;
  T.Recorder.respond r ~src:"b" ~id:id2 (T.Got (Some "v"));
  let entries = T.Recorder.entries r in
  Alcotest.(check int) "events" 5 (T.Recorder.events_recorded r);
  Alcotest.(check int) "entries" 5 (List.length entries);
  Alcotest.(check bool) "distinct ids" true (id1 <> id2);
  Alcotest.(check int) "nothing dropped" 0 (T.Recorder.dropped r);
  let ts = List.map (fun en -> en.T.ts) entries in
  Alcotest.(check (list int)) "strictly ascending timestamps" (List.sort_uniq compare ts) ts;
  let jsonl = T.Recorder.to_jsonl r in
  let lines = String.split_on_char '\n' (String.trim jsonl) in
  Alcotest.(check int) "one JSONL line per event" 5 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is a JSON object" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

let test_recorder_byte_budget_drops_pairs () =
  let obs = Obs.create ~scope:"tracecheck-test" ~trace_capacity:0 () in
  let r = T.Recorder.create ~obs ~byte_budget:600 () in
  let ids =
    List.init 16 (fun i ->
        let id = T.Recorder.invoke r ~src:"a" (T.Put { key = Printf.sprintf "key-%02d" i; value = String.make 32 'x' }) in
        T.Recorder.respond r ~src:"a" ~id T.Acked;
        id)
  in
  Alcotest.(check bool) "some events dropped" true (T.Recorder.dropped r > 0);
  Alcotest.(check bool) "budget respected" true
    (T.Recorder.bytes_used r <= T.Recorder.byte_budget r);
  Alcotest.(check int) "obs counter tracks drops" (T.Recorder.dropped r)
    (Obs.counter_value obs "obs.trace_dropped");
  (* A dropped invoke must drop its respond too: the surviving log still
     passes the wire-level checks (every respond has its invoke). *)
  let report = A.run (T.Recorder.entries r) in
  Alcotest.(check int) "log well-formed despite drops" 0 (List.length report.A.rejections);
  (* The audit of the recorder itself reports the truncation. *)
  let report = A.audit r in
  Alcotest.check verdict "truncated verdict" A.Truncated report.A.verdict;
  Alcotest.(check bool) "not ok" false (A.ok report);
  ignore ids

(* {2 Audit: valid histories} *)

let test_audit_accepts_sequential_history () =
  let report =
    A.run
      [
        inv 1 1 (T.Put { key = "a"; value = "x" });
        resp 2 1 T.Acked;
        inv 3 2 (T.Get { key = "a" });
        resp 4 2 (T.Got (Some "x"));
        inv 5 3 (T.Delete { key = "a" });
        resp 6 3 T.Acked;
        inv 7 4 (T.Get { key = "a" });
        resp 8 4 (T.Got None);
      ]
  in
  Alcotest.check verdict "valid" A.Valid report.A.verdict;
  Alcotest.(check bool) "ok" true (A.ok report);
  Alcotest.(check int) "ops" 4 report.A.ops

let test_audit_accepts_concurrent_overlap () =
  (* put y's interval nests inside put x's: linearizing y before x
     explains a later read of x even though y was invoked second. *)
  let report =
    A.run
      [
        inv 1 1 (T.Put { key = "a"; value = "x" });
        inv 2 2 (T.Put { key = "a"; value = "y" });
        resp 3 2 T.Acked;
        resp 4 1 T.Acked;
        inv 5 3 (T.Get { key = "a" });
        resp 6 3 (T.Got (Some "x"));
      ]
  in
  Alcotest.check verdict "valid" A.Valid report.A.verdict

let test_audit_failed_mutation_indeterminate () =
  (* A failed put may or may not have landed: both read outcomes are
     admissible, and so is reading the old value afterwards. *)
  let history tail =
    [
      inv 1 1 (T.Put { key = "a"; value = "old" });
      resp 2 1 T.Acked;
      inv 3 2 (T.Put { key = "a"; value = "new" });
      resp 4 2 T.Failed;
    ]
    @ tail
  in
  List.iter
    (fun v ->
      let report = A.run (history [ inv 5 3 (T.Get { key = "a" }); resp 6 3 (T.Got (Some v)) ]) in
      Alcotest.check verdict (v ^ " admissible") A.Valid report.A.verdict)
    [ "old"; "new" ];
  (* A pending mutation (no response at all) is indeterminate too. *)
  let report =
    A.run
      [
        inv 1 1 (T.Put { key = "a"; value = "x" });
        inv 2 2 (T.Get { key = "a" });
        resp 3 2 (T.Got (Some "x"));
      ]
  in
  Alcotest.check verdict "pending put readable" A.Valid report.A.verdict;
  Alcotest.(check int) "one pending op" 1 report.A.pending

(* {2 Audit: seeded violations (the teeth)} *)

let test_audit_rejects_lost_acked_write () =
  let report =
    A.run
      [
        inv 1 1 (T.Put { key = "a"; value = "x" });
        resp 2 1 T.Acked;
        inv 3 2 (T.Get { key = "a" });
        resp 4 2 (T.Got None);
      ]
  in
  Alcotest.check verdict "rejected" A.Rejected report.A.verdict;
  match report.A.rejections with
  | [ r ] ->
    Alcotest.(check string) "names the key" "a" r.A.r_key;
    (* Minimization keeps the violation: the subhistory still carries
       both the acked put and the contradicting read. *)
    Alcotest.(check bool) "minimized subhistory non-empty" true (r.A.r_entries <> [])
  | rs -> Alcotest.failf "expected one rejection, got %d" (List.length rs)

let test_audit_rejects_stale_read () =
  let report =
    A.run
      [
        inv 1 1 (T.Put { key = "a"; value = "x" });
        resp 2 1 T.Acked;
        inv 3 2 (T.Put { key = "a"; value = "y" });
        resp 4 2 T.Acked;
        inv 5 3 (T.Get { key = "a" });
        resp 6 3 (T.Got (Some "x"));
      ]
  in
  Alcotest.check verdict "rejected" A.Rejected report.A.verdict

let test_audit_rejects_snapshot_violation () =
  (* Per-key each answer is fine; no single point in the scan's interval
     can both miss "a" (certain from ts 3) and see "b" (possible from
     ts 4). *)
  let report =
    A.run
      [
        inv 1 4 (T.Scan { lo = None; hi = None });
        inv 2 1 (T.Put { key = "a"; value = "1" });
        resp 3 1 T.Acked;
        inv 4 2 (T.Put { key = "b"; value = "2" });
        resp 5 2 T.Acked;
        resp 6 4 (T.Scanned { items = [ ("b", "2") ]; complete = true });
      ]
  in
  Alcotest.check verdict "rejected" A.Rejected report.A.verdict

let test_audit_rejects_wire_malformations () =
  let cases =
    [
      ( "respond before invoke",
        [ inv 5 1 (T.Put { key = "a"; value = "x" }); resp 3 1 T.Acked ] );
      ( "unknown id",
        [ inv 1 1 (T.Put { key = "a"; value = "x" }); resp 2 7 T.Acked ] );
      ( "duplicate invoke id",
        [
          inv 1 1 (T.Put { key = "a"; value = "x" });
          e 2 (T.Invoke { id = 1; client = 0; op = T.Get { key = "a" } });
        ] );
      ( "outcome kind mismatch",
        [ inv 1 1 (T.Get { key = "a" }); resp 2 1 T.Acked ] );
      ( "batch arity mismatch",
        [
          inv 1 1 (T.Batch [ ("a", Some "x"); ("b", None) ]);
          resp 2 1 (T.Batch_done [ true ]);
        ] );
    ]
  in
  List.iter
    (fun (name, entries) ->
      let report = A.run entries in
      Alcotest.check verdict name A.Rejected report.A.verdict)
    cases

let test_audit_gives_up_on_tiny_budget () =
  (* Many mutually concurrent ops; a one-node budget cannot finish the
     search, and the verdict must admit that rather than claim Valid. *)
  let n = 12 in
  let invokes = List.init n (fun i -> inv (i + 1) (i + 1) (T.Put { key = "a"; value = string_of_int i })) in
  let resps = List.init n (fun i -> resp (n + i + 1) (i + 1) T.Acked) in
  let report = A.run ~budget_per_key:1 (invokes @ resps) in
  Alcotest.check verdict "gave up" A.Gave_up report.A.verdict;
  Alcotest.(check bool) "not ok" false (A.ok report)

(* {2 End-to-end capture} *)

let test_shared_store_capture_audits_valid () =
  let r = T.Recorder.create () in
  let s = Store.Shared.create ~shards:4 ~trace:r Store.Default.test_config in
  let ok_or_fail what = function
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %a" what Store.Default.pp_error e
  in
  ok_or_fail "put" (Store.Shared.put s ~key:"a" ~value:"1");
  ok_or_fail "batch"
    (Store.Shared.put_batch s [ ("b", "2"); ("c", "3") ] : (Store.Shared.batch_result, _) result)
  |> fun (_ : Store.Shared.batch_result) -> ();
  Alcotest.(check (option string)) "get" (Some "1") (ok_or_fail "get" (Store.Shared.get s ~key:"a"));
  ignore (ok_or_fail "flush" (Store.Shared.flush s) : int);
  ok_or_fail "delete" (Store.Shared.delete s ~key:"a");
  let items = ok_or_fail "scan" (Store.Shared.scan s ()) in
  Alcotest.(check (list (pair string string))) "scan sees b c" [ ("b", "2"); ("c", "3") ] items;
  let report = A.audit r in
  Alcotest.check verdict "valid" A.Valid report.A.verdict;
  Alcotest.(check bool) "flush marker recorded" true (report.A.markers > 0);
  Alcotest.(check bool) "scan judged" true (report.A.scans > 0)

let test_rpc_node_capture_audits_valid () =
  let r = T.Recorder.create () in
  let node = Rpc.Node.create ~trace:r Store.Default.test_config in
  let handle req = Rpc.Node.handle node req in
  for i = 0 to 9 do
    match handle (Rpc.Message.Put { key = Printf.sprintf "k%d" i; value = string_of_int i }) with
    | Rpc.Message.Ack -> ()
    | other -> Alcotest.failf "put: %a" Rpc.Message.pp_response other
  done;
  (* Drive a paginated scan through its continuation tokens: each page is
     its own recorded interval; only the last may claim completeness. *)
  let rec drain after n =
    match handle (Rpc.Message.Scan_request { lo = None; hi = None; after; max_results = 4 }) with
    | Rpc.Message.Scan_response { items; more } ->
      let n = n + List.length items in
      if more then
        match List.rev items with
        | (last, _) :: _ -> drain (Some last) n
        | [] -> n
      else n
    | other -> Alcotest.failf "scan: %a" Rpc.Message.pp_response other
  in
  Alcotest.(check int) "paginated scan sees all keys" 10 (drain None 0);
  (* Control-plane requests are not client-visible history. *)
  ignore (handle Rpc.Message.List : Rpc.Message.response);
  let report = A.audit r in
  Alcotest.check verdict "valid" A.Valid report.A.verdict;
  Alcotest.(check bool) "pages judged as scans" true (report.A.scans >= 3)

let test_fleet_capture_markers_and_validity () =
  let r = T.Recorder.create () in
  let fleet = Fleet.create ~trace:r (Experiments.Chaos.fleet_config ~seed:7) in
  (match Fleet.put fleet ~key:"s00" ~value:"v" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "put: %a" Fleet.pp_error e);
  Fleet.crash_node fleet ~rng:(Util.Rng.create 5L) ~node:0;
  (match Fleet.get fleet ~key:"s00" with
  | Ok (Some "v") -> ()
  | Ok v -> Alcotest.failf "get: %a" Fmt.(Dump.option string) v
  | Error e -> Alcotest.failf "get: %a" Fleet.pp_error e);
  let kinds =
    List.filter_map
      (fun en -> match en.T.ev with T.Mark { kind; _ } -> Some kind | _ -> None)
      (T.Recorder.entries r)
  in
  Alcotest.(check bool) "crash marker" true (List.mem T.Crash kinds);
  Alcotest.(check bool) "restart marker" true (List.mem T.Restart kinds);
  let report = A.audit r in
  Alcotest.check verdict "valid" A.Valid report.A.verdict

let test_chaos_campaign_capture_audits_valid () =
  Faults.disable_all ();
  let ops = Experiments.Chaos.gen ~length:30 ~seed:3 in
  let r = T.Recorder.create ~byte_budget:(8 * 1024 * 1024) () in
  let violations, _, _ = Experiments.Chaos.run_ops ~trace:r ~seed:3 ops in
  Alcotest.(check int) "campaign clean" 0 (List.length violations);
  let report = A.audit r in
  Alcotest.check verdict "valid" A.Valid report.A.verdict;
  Alcotest.(check bool) "trace non-trivial" true (report.A.entries > 20)

let () =
  Alcotest.run "tracecheck"
    [
      ( "recorder",
        [
          Alcotest.test_case "orders and counts" `Quick test_recorder_orders_and_counts;
          Alcotest.test_case "byte budget drops pairs" `Quick
            test_recorder_byte_budget_drops_pairs;
        ] );
      ( "audit accepts",
        [
          Alcotest.test_case "sequential history" `Quick test_audit_accepts_sequential_history;
          Alcotest.test_case "concurrent overlap" `Quick test_audit_accepts_concurrent_overlap;
          Alcotest.test_case "failed mutation indeterminate" `Quick
            test_audit_failed_mutation_indeterminate;
        ] );
      ( "audit rejects",
        [
          Alcotest.test_case "lost acked write" `Quick test_audit_rejects_lost_acked_write;
          Alcotest.test_case "stale read" `Quick test_audit_rejects_stale_read;
          Alcotest.test_case "snapshot violation" `Quick test_audit_rejects_snapshot_violation;
          Alcotest.test_case "wire malformations" `Quick test_audit_rejects_wire_malformations;
          Alcotest.test_case "tiny budget gives up" `Quick test_audit_gives_up_on_tiny_budget;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "shared store capture" `Quick
            test_shared_store_capture_audits_valid;
          Alcotest.test_case "rpc node capture" `Quick test_rpc_node_capture_audits_valid;
          Alcotest.test_case "fleet capture markers" `Quick
            test_fleet_capture_markers_and_validity;
          Alcotest.test_case "chaos campaign capture" `Quick
            test_chaos_campaign_capture_audits_valid;
        ] );
    ]
