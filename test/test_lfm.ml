(* Tests for the validation framework itself: generators, the conformance
   harness (clean baselines as qcheck properties), the minimizer, and the
   detection driver. *)

let config = Lfm.Harness.default_config

let test_gen_deterministic () =
  let gen seed =
    let rng = Util.Rng.create (Int64.of_int seed) in
    Lfm.Gen.sequence ~rng ~bias:Lfm.Gen.default_bias ~profile:Lfm.Gen.Full ~page_size:64
      ~extent_count:12 ~length:50
  in
  Alcotest.(check bool) "same seed same ops" true (gen 7 = gen 7);
  Alcotest.(check bool) "different seeds differ" true (gen 7 <> gen 8)

let test_gen_profiles () =
  let rng = Util.Rng.create 5L in
  let ops =
    Lfm.Gen.sequence ~rng ~bias:Lfm.Gen.default_bias ~profile:Lfm.Gen.Crash_free ~page_size:64
      ~extent_count:12 ~length:300
  in
  Alcotest.(check bool) "no reboots in crash-free" true
    (not (List.exists Lfm.Op.is_reboot ops));
  Alcotest.(check bool) "no failures in crash-free" true
    (not (List.exists Lfm.Op.is_failure ops));
  let rng = Util.Rng.create 5L in
  let ops =
    Lfm.Gen.sequence ~rng ~bias:Lfm.Gen.default_bias ~profile:Lfm.Gen.Full ~page_size:64
      ~extent_count:12 ~length:300
  in
  Alcotest.(check bool) "full has reboots" true (List.exists Lfm.Op.is_reboot ops);
  Alcotest.(check bool) "full has failures" true (List.exists Lfm.Op.is_failure ops)

let test_gen_key_reuse_bias () =
  let count_hits bias =
    let rng = Util.Rng.create 17L in
    let ops =
      Lfm.Gen.sequence ~rng ~bias ~profile:Lfm.Gen.Crash_free ~page_size:64 ~extent_count:12
        ~length:400
    in
    let put = Hashtbl.create 16 in
    List.fold_left
      (fun hits op ->
        match op with
        | Lfm.Op.Put (k, _) ->
          Hashtbl.replace put k ();
          hits
        | Lfm.Op.Get k -> if Hashtbl.mem put k then hits + 1 else hits
        | _ -> hits)
      0 ops
  in
  Alcotest.(check bool) "bias increases hit rate" true
    (count_hits Lfm.Gen.default_bias > count_hits Lfm.Gen.unbiased)

let batch_bias = { Lfm.Gen.default_bias with Lfm.Gen.batch_weight = 8 }

let test_gen_batch_weight () =
  let count_batches bias =
    let rng = Util.Rng.create 9L in
    let ops =
      Lfm.Gen.sequence ~rng ~bias ~profile:Lfm.Gen.Crash_free ~page_size:64 ~extent_count:12
        ~length:300
    in
    List.length
      (List.filter
         (function Lfm.Op.PutBatch _ | Lfm.Op.DeleteBatch _ -> true | _ -> false)
         ops)
  in
  (* The deterministic detection experiments depend on the default alphabet
     staying exactly as it was, so batch ops must be strictly opt-in. *)
  Alcotest.(check int) "default alphabet has no batch ops" 0
    (count_batches Lfm.Gen.default_bias);
  Alcotest.(check bool) "batch_weight adds batch ops" true (count_batches batch_bias > 0)

let scan_bias = { Lfm.Gen.default_bias with Lfm.Gen.scan_weight = 6 }

let test_gen_scan_weight () =
  let count_scans bias =
    let rng = Util.Rng.create 9L in
    let ops =
      Lfm.Gen.sequence ~rng ~bias ~profile:Lfm.Gen.Crash_free ~page_size:64 ~extent_count:12
        ~length:300
    in
    List.length (List.filter (function Lfm.Op.Scan _ -> true | _ -> false) ops)
  in
  (* Same contract as batch ops: scans join the alphabet strictly opt-in so
     the deterministic detection experiments keep their default sequences. *)
  Alcotest.(check int) "default alphabet has no scan ops" 0
    (count_scans Lfm.Gen.default_bias);
  Alcotest.(check bool) "scan_weight adds scan ops" true (count_scans scan_bias > 0)

let test_summary () =
  let ops =
    [
      Lfm.Op.Put ("k", String.make 100 'x');
      Lfm.Op.Get "k";
      Lfm.Op.DirtyReboot
        { Lfm.Op.flush_index = false; flush_superblock = false; persist_probability = 0.5;
          split_pages = false };
    ]
  in
  let s = Lfm.Op.summarize ops in
  Alcotest.(check int) "ops" 3 s.Lfm.Op.ops;
  Alcotest.(check int) "crashes" 1 s.Lfm.Op.crashes;
  Alcotest.(check int) "bytes" 100 s.Lfm.Op.bytes

(* The paper's core claim, as qcheck properties: the correct implementation
   refines the reference model on random sequences in every profile. *)
let baseline_prop profile =
  QCheck.Test.make
    ~name:(Printf.sprintf "conformance baseline (%s)" (Lfm.Gen.profile_name profile))
    ~count:150
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      Faults.disable_all ();
      let _, outcome =
        Lfm.Harness.run_seed config ~profile ~bias:Lfm.Gen.default_bias ~length:50 ~seed
      in
      match outcome with
      | Lfm.Harness.Passed -> true
      | Lfm.Harness.Failed f ->
        QCheck.Test.fail_reportf "seed %d: %a" seed Lfm.Harness.pp_failure f)

(* Batch conformance (the group-commit tentpole): sequences rich in
   PutBatch/DeleteBatch must refine the same reference model as their
   sequential expansion — the model applies a batch one key at a time, so
   any divergence in the batched implementation (ordering, lost ops,
   mis-shared dependencies from IO coalescing) fails refinement. The
   crash-enumeration hook extends the check to every dependency-closed
   crash prefix, i.e. every point at which a half-durable batch could be
   torn by power loss. *)
let batch_conformance_prop =
  QCheck.Test.make ~name:"batch conformance (batch = sequential, incl. crash prefixes)"
    ~count:1000
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      Faults.disable_all ();
      let acc =
        ref { Lfm.Crash_enum.states = 0; truncated = false; violations = 0; first_violation = None }
      in
      let cfg =
        { config with Lfm.Harness.pre_crash_hook = Some (Lfm.Crash_enum.hook ~max_states:24 ~acc) }
      in
      let _, outcome =
        Lfm.Harness.run_seed cfg ~profile:Lfm.Gen.Crashing ~bias:batch_bias ~length:40 ~seed
      in
      match outcome with
      | Lfm.Harness.Passed -> true
      | Lfm.Harness.Failed f ->
        QCheck.Test.fail_reportf "seed %d: %a" seed Lfm.Harness.pp_failure f)

(* Scan conformance (the range-scan tentpole): sequences rich in Scan ops
   must drain the stack-wide cursor to exactly the key/value pairs the
   reference model admits over [lo, hi] — in order, in bounds, with no
   phantom or missing keys. Running under the Crashing profile with the
   crash-enumeration hook extends the check across dependency-closed crash
   prefixes, so a scan observed after a dirty reboot must still agree with
   the crash model's reconciled view (levelled relocation through Dep is
   what makes this hold). *)
let scan_conformance_prop =
  QCheck.Test.make ~name:"scan conformance (cursor = model range, incl. crash prefixes)"
    ~count:1000
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      Faults.disable_all ();
      let acc =
        ref { Lfm.Crash_enum.states = 0; truncated = false; violations = 0; first_violation = None }
      in
      let cfg =
        { config with Lfm.Harness.pre_crash_hook = Some (Lfm.Crash_enum.hook ~max_states:24 ~acc) }
      in
      let _, outcome =
        Lfm.Harness.run_seed cfg ~profile:Lfm.Gen.Crashing ~bias:scan_bias ~length:40 ~seed
      in
      match outcome with
      | Lfm.Harness.Passed -> true
      | Lfm.Harness.Failed f ->
        QCheck.Test.fail_reportf "seed %d: %a" seed Lfm.Harness.pp_failure f)

let test_harness_catches_seeded_divergence () =
  (* Enable a fault and confirm the harness is what catches it. *)
  Faults.disable_all ();
  Faults.enable Faults.F2_cache_not_drained;
  Fun.protect
    ~finally:(fun () -> Faults.disable_all ())
    (fun () ->
      let found = ref false in
      let seed = ref 0 in
      while (not !found) && !seed < 400 do
        let _, outcome =
          Lfm.Harness.run_seed config ~profile:Lfm.Gen.Crash_free ~bias:Lfm.Gen.default_bias
            ~length:60 ~seed:!seed
        in
        (match outcome with Lfm.Harness.Failed _ -> found := true | _ -> ());
        incr seed
      done;
      Alcotest.(check bool) "fault #2 caught" true !found)

let test_minimizer_reduces () =
  (* Synthetic failing predicate: fails iff the sequence contains a Compact
     and a Reclaim; the minimizer should get to exactly two operations. *)
  let still_fails ops =
    List.exists (fun o -> o = Lfm.Op.Compact) ops
    && List.exists (fun o -> o = Lfm.Op.Reclaim) ops
  in
  let rng = Util.Rng.create 23L in
  let rec gen_failing () =
    let ops =
      Lfm.Gen.sequence ~rng ~bias:Lfm.Gen.default_bias ~profile:Lfm.Gen.Full ~page_size:64
        ~extent_count:12 ~length:60
    in
    if still_fails ops then ops else gen_failing ()
  in
  let ops = gen_failing () in
  let minimized, stats = Lfm.Minimize.minimize ~still_fails ops in
  Alcotest.(check int) "two ops" 2 (List.length minimized);
  Alcotest.(check bool) "still fails" true (still_fails minimized);
  Alcotest.(check bool) "stats consistent" true
    (stats.Lfm.Minimize.minimized.Lfm.Op.ops = 2
    && stats.Lfm.Minimize.original.Lfm.Op.ops = 60)

let test_minimizer_shrinks_real_counterexample () =
  (* Fault #4 is cheap to find; its minimized counterexample should be a
     handful of operations. *)
  Faults.disable_all ();
  let r = Lfm.Detect.detect ~max_sequences:500 ~minimize:true ~seed:11 Faults.F4_disk_return_loses_shards in
  Alcotest.(check bool) "found" true r.Lfm.Detect.found;
  match r.Lfm.Detect.minimized with
  | Some m ->
    Alcotest.(check bool)
      (Printf.sprintf "small (%d ops)" m.Lfm.Op.ops)
      true (m.Lfm.Op.ops <= 12)
  | None -> Alcotest.fail "expected minimized counterexample"

let test_detect_fast_faults () =
  Faults.disable_all ();
  List.iter
    (fun fault ->
      let r = Lfm.Detect.detect ~max_sequences:2000 ~minimize:false ~seed:77 fault in
      Alcotest.(check bool) (Format.asprintf "%a found" Faults.pp fault) true r.Lfm.Detect.found)
    [
      Faults.F1_reclaim_off_by_one;
      Faults.F3_shutdown_skips_metadata;
      Faults.F4_disk_return_loses_shards;
      Faults.F9_model_crash_reconcile;
      Faults.F15_model_locator_reuse;
    ]

let test_method_mapping () =
  List.iter
    (fun fault ->
      let m = Lfm.Detect.method_for fault in
      let expected_class = Faults.property_class fault in
      match m, expected_class with
      | Lfm.Detect.Smc, Faults.Concurrency -> ()
      | (Lfm.Detect.Pbt _ | Lfm.Detect.Model_validation), (Faults.Functional_correctness | Faults.Crash_consistency) -> ()
      | Lfm.Detect.Model_validation, Faults.Concurrency -> ()  (* #15 is cataloged under concurrency *)
      | _ ->
        Alcotest.failf "fault %a: method %s vs class %s" Faults.pp fault
          (Lfm.Detect.method_name m)
          (Faults.property_class_name expected_class))
    Faults.all

let test_fault_registry () =
  Alcotest.(check int) "16 faults" 16 (List.length Faults.all);
  List.iteri
    (fun i fault ->
      Alcotest.(check int) "numbering" (i + 1) (Faults.number fault);
      Alcotest.(check bool) "description nonempty" true (String.length (Faults.description fault) > 0);
      Alcotest.(check bool) "of_number inverse" true (Faults.of_number (i + 1) = Some fault))
    Faults.all;
  Faults.enable Faults.F1_reclaim_off_by_one;
  Alcotest.(check bool) "enabled" true (Faults.enabled Faults.F1_reclaim_off_by_one);
  Faults.disable_all ();
  Alcotest.(check bool) "disabled" false (Faults.enabled Faults.F1_reclaim_off_by_one);
  let r = Faults.with_fault Faults.F2_cache_not_drained (fun () -> Faults.enabled Faults.F2_cache_not_drained) in
  Alcotest.(check bool) "with_fault scopes" true (r && not (Faults.enabled Faults.F2_cache_not_drained))

let test_chunk_harness () =
  Faults.disable_all ();
  (* honest code clean *)
  for seed = 0 to 99 do
    match Lfm.Chunk_harness.run ~seed ~length:40 with
    | _, Lfm.Chunk_harness.Passed -> ()
    | _, Lfm.Chunk_harness.Failed f ->
      Alcotest.failf "component baseline (seed %d): %a" seed Lfm.Chunk_harness.pp_failure f
  done;
  (* component-level detection of the reclamation faults *)
  List.iter
    (fun fault ->
      let found, _ = Lfm.Chunk_harness.hunt fault ~max_sequences:2_000 ~seed:31 in
      Alcotest.(check bool) (Format.asprintf "%a found at component level" Faults.pp fault) true
        found)
    [ Faults.F1_reclaim_off_by_one; Faults.F5_reclaim_forgets_on_read_error ];
  (* determinism *)
  let a = Lfm.Chunk_harness.run ~seed:5 ~length:40 in
  let b = Lfm.Chunk_harness.run ~seed:5 ~length:40 in
  Alcotest.(check bool) "deterministic" true (a = b)

let test_crash_enum_clean_and_detects () =
  (* The exhaustive block-level enumerator (section 5): clean on honest
     code, and it finds the crash-consistency defect #8. *)
  Faults.disable_all ();
  let run_with_enum ~seed =
    let acc =
      ref { Lfm.Crash_enum.states = 0; truncated = false; violations = 0; first_violation = None }
    in
    let cfg =
      { config with Lfm.Harness.pre_crash_hook = Some (Lfm.Crash_enum.hook ~max_states:1_000 ~acc) }
    in
    let _, outcome =
      Lfm.Harness.run_seed cfg ~profile:Lfm.Gen.Crashing ~bias:Lfm.Gen.default_bias ~length:50
        ~seed
    in
    (outcome, !acc)
  in
  let states = ref 0 in
  for seed = 0 to 9 do
    let outcome, acc = run_with_enum ~seed in
    states := !states + acc.Lfm.Crash_enum.states;
    match outcome with
    | Lfm.Harness.Passed -> ()
    | Lfm.Harness.Failed f ->
      Alcotest.failf "honest code violated in enumerated crash state (seed %d): %a" seed
        Lfm.Harness.pp_failure f
  done;
  Alcotest.(check bool) "enumerated many states" true (!states > 100);
  Faults.enable Faults.F8_missing_pointer_dep;
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 50 do
    (match run_with_enum ~seed:!seed with
    | Lfm.Harness.Failed _, _ -> found := true
    | _ -> ());
    incr seed
  done;
  Faults.disable_all ();
  Alcotest.(check bool) "#8 found by enumeration" true !found

let test_replay_deterministic () =
  let ops, outcome1 =
    Lfm.Harness.run_seed config ~profile:Lfm.Gen.Full ~bias:Lfm.Gen.default_bias ~length:60
      ~seed:31337
  in
  let outcome2 = Lfm.Harness.run config ops in
  Alcotest.(check bool) "same outcome" true (outcome1 = outcome2)

let () =
  Faults.disable_all ();
  Faults.reset_counters ();
  Alcotest.run "lfm"
    [
      ( "generation",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "profiles" `Quick test_gen_profiles;
          Alcotest.test_case "key reuse bias" `Quick test_gen_key_reuse_bias;
          Alcotest.test_case "batch weight opt-in" `Quick test_gen_batch_weight;
          Alcotest.test_case "scan weight opt-in" `Quick test_gen_scan_weight;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
      ( "conformance",
        [
          QCheck_alcotest.to_alcotest (baseline_prop Lfm.Gen.Crash_free);
          QCheck_alcotest.to_alcotest (baseline_prop Lfm.Gen.Crashing);
          QCheck_alcotest.to_alcotest (baseline_prop Lfm.Gen.Failing);
          QCheck_alcotest.to_alcotest (baseline_prop Lfm.Gen.Full);
          QCheck_alcotest.to_alcotest batch_conformance_prop;
          QCheck_alcotest.to_alcotest scan_conformance_prop;
          Alcotest.test_case "replay deterministic" `Quick test_replay_deterministic;
          Alcotest.test_case "catches seeded divergence" `Quick
            test_harness_catches_seeded_divergence;
          Alcotest.test_case "exhaustive crash enumeration" `Quick
            test_crash_enum_clean_and_detects;
          Alcotest.test_case "component-level chunk harness" `Quick test_chunk_harness;
        ] );
      ( "minimization",
        [
          Alcotest.test_case "reduces synthetic failure" `Quick test_minimizer_reduces;
          Alcotest.test_case "shrinks real counterexample" `Quick
            test_minimizer_shrinks_real_counterexample;
        ] );
      ( "detection",
        [
          Alcotest.test_case "fast faults found" `Quick test_detect_fast_faults;
          Alcotest.test_case "method mapping" `Quick test_method_mapping;
          Alcotest.test_case "fault registry" `Quick test_fault_registry;
        ] );
    ]
