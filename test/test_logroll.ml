(* Tests for the generation-stamped record log: append/recover cycles,
   extent switching, torn-tail handling. *)

open Util

let config = { Disk.extent_count = 4; pages_per_extent = 4; page_size = 32 }

let make () =
  let disk = Disk.create config in
  let sched = Io_sched.create ~seed:2L disk in
  (disk, sched, Logroll.create sched ~extents:(0, 1) ~name:"test")

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "logroll error: %a" Logroll.pp_error e

let sched_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "sched error: %a" Io_sched.pp_error e

let test_append_recover () =
  let _, sched, roll = make () in
  ignore (ok (Logroll.append roll ~payload:"one" ~input:Dep.trivial));
  ignore (ok (Logroll.append roll ~payload:"two" ~input:Dep.trivial));
  sched_ok (Io_sched.flush sched);
  match Logroll.recover roll with
  | Some (2, "two") -> ()
  | Some (g, p) -> Alcotest.failf "wrong record: gen %d payload %S" g p
  | None -> Alcotest.fail "no record recovered"

let test_recover_empty () =
  let _, _, roll = make () in
  Alcotest.(check bool) "empty" true (Logroll.recover roll = None)

let test_chain_orders_records () =
  (* Generation g+1 never persists without generation g: the chain makes a
     crash state with only the newer record impossible. *)
  let attempt seed =
    let _, sched, roll = make () in
    ignore (ok (Logroll.append roll ~payload:"g1" ~input:Dep.trivial));
    ignore (ok (Logroll.append roll ~payload:"g2" ~input:Dep.trivial));
    let rng = Rng.create (Int64.of_int seed) in
    ignore (Io_sched.crash sched ~rng ~persist_probability:0.5 ~split_pages:false);
    match Logroll.recover roll with
    | None -> ()
    | Some (g, p) ->
      let expected = if g = 1 then "g1" else "g2" in
      Alcotest.(check string) "payload matches generation" expected p
  in
  for seed = 0 to 100 do
    attempt seed
  done

let test_extent_switch () =
  let _, sched, roll = make () in
  (* Fill with enough records to force at least one switch. *)
  let payload = String.make 40 'p' in
  for _ = 1 to 8 do
    ignore (ok (Logroll.append roll ~payload ~input:Dep.trivial))
  done;
  Alcotest.(check bool) "switched" true (Logroll.switches roll > 0);
  sched_ok (Io_sched.flush sched);
  match Logroll.recover roll with
  | Some (8, p) -> Alcotest.(check string) "latest survives switches" payload p
  | Some (g, _) -> Alcotest.failf "wrong generation %d" g
  | None -> Alcotest.fail "no record"

let test_torn_tail_forces_switch () =
  (* Crash drops a record mid-extent; the next append must go to the
     sibling so future scans cannot be blinded by the torn bytes. *)
  let _, sched, roll = make () in
  ignore (ok (Logroll.append roll ~payload:"solid" ~input:Dep.trivial));
  sched_ok (Io_sched.flush sched);
  ignore (ok (Logroll.append roll ~payload:"torn" ~input:Dep.trivial));
  let rng = Rng.create 3L in
  ignore (Io_sched.crash sched ~rng ~persist_probability:0.0 ~split_pages:false);
  (match Logroll.recover roll with
  | Some (1, "solid") -> ()
  | other ->
    Alcotest.failf "unexpected recovery: %s"
      (match other with
      | None -> "none"
      | Some (g, p) -> Printf.sprintf "gen %d payload %S" g p));
  ignore (ok (Logroll.append roll ~payload:"after" ~input:Dep.trivial));
  sched_ok (Io_sched.flush sched);
  match Logroll.recover roll with
  | Some (2, "after") -> ()
  | _ -> Alcotest.fail "record appended after torn tail must be recoverable"

let test_record_too_large () =
  let _, _, roll = make () in
  let huge = String.make (2 * Disk.extent_size config) 'x' in
  match Logroll.append roll ~payload:huge ~input:Dep.trivial with
  | Error (Logroll.Record_too_large _) -> ()
  | _ -> Alcotest.fail "oversized record must be rejected"

(* Property: after any sequence of appends, a full flush, and a crash with
   arbitrary persistence, recovery returns the highest durable generation
   and its exact payload. *)
let prop_recover_newest =
  QCheck.Test.make ~name:"recovery returns newest durable record" ~count:200
    QCheck.(pair (int_bound 10) (int_bound 10_000))
    (fun (n, seed) ->
      let _, sched, roll = make () in
      let payloads = List.init (n + 1) (fun i -> Printf.sprintf "payload-%d" i) in
      List.iter
        (fun p -> ignore (ok (Logroll.append roll ~payload:p ~input:Dep.trivial)))
        payloads;
      let rng = Rng.create (Int64.of_int seed) in
      ignore (Io_sched.crash sched ~rng ~persist_probability:0.6 ~split_pages:true);
      match Logroll.recover roll with
      | None -> true
      | Some (g, p) -> g >= 1 && g <= n + 1 && String.equal p (Printf.sprintf "payload-%d" (g - 1)))

(* Property: across arbitrary append/crash/recover interleavings, the
   recovered generation never exceeds the last appended one, and appending
   after recovery always yields a recoverable newest record. *)
let prop_generation_monotone =
  QCheck.Test.make ~name:"generations survive crash/recover cycles" ~count:150
    QCheck.(int_bound 100_000)
    (fun seed ->
      let _, sched, roll = make () in
      let rng = Rng.create (Int64.of_int seed) in
      let appended = ref 0 in
      let ok' = function Ok _ -> () | Error e -> Format.kasprintf failwith "%a" Logroll.pp_error e in
      let result = ref true in
      for _ = 1 to 12 do
        match Rng.int rng 3 with
        | 0 ->
          ok' (Logroll.append roll ~payload:(Printf.sprintf "g%d" (!appended + 1)) ~input:Dep.trivial);
          incr appended
        | 1 -> ignore (Io_sched.pump ~max_ios:(Rng.int rng 4) sched)
        | _ -> (
          ignore (Io_sched.crash sched ~rng ~persist_probability:0.5 ~split_pages:true);
          match Logroll.recover roll with
          | None -> appended := 0
          | Some (g, payload) ->
            if g > !appended || payload <> Printf.sprintf "g%d" g then result := false;
            appended := g)
      done;
      !result)

let () =
  Alcotest.run "logroll"
    [
      ( "logroll",
        [
          Alcotest.test_case "append/recover" `Quick test_append_recover;
          Alcotest.test_case "recover empty" `Quick test_recover_empty;
          Alcotest.test_case "chain orders records" `Quick test_chain_orders_records;
          Alcotest.test_case "extent switch" `Quick test_extent_switch;
          Alcotest.test_case "torn tail forces switch" `Quick test_torn_tail_forces_switch;
          Alcotest.test_case "record too large" `Quick test_record_too_large;
          QCheck_alcotest.to_alcotest prop_recover_newest;
          QCheck_alcotest.to_alcotest prop_generation_monotone;
        ] );
    ]
