(* Integration tests for the full ShardStore node: request plane,
   maintenance, crash/recovery, control plane, and the mocked-index store
   (the paper's section 3.2 model-as-mock reuse). *)

open Util
module S = Store.Default
module Mocked = Store.Make (Model.Index_mock)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "store error: %a" S.pp_error e

let make () = S.create S.test_config

let put s k v = ignore (ok (S.put s ~key:k ~value:v))
let get s k = ok (S.get s ~key:k)

let test_put_get_delete () =
  let s = make () in
  put s "alpha" "one";
  put s "beta" "two";
  Alcotest.(check (option string)) "get alpha" (Some "one") (get s "alpha");
  Alcotest.(check (option string)) "get beta" (Some "two") (get s "beta");
  Alcotest.(check (option string)) "get missing" None (get s "gamma");
  ignore (ok (S.delete s ~key:"alpha"));
  Alcotest.(check (option string)) "deleted" None (get s "alpha");
  Alcotest.(check (list string)) "list" [ "beta" ] (ok (S.list s))

let test_overwrite () =
  let s = make () in
  put s "k" "first";
  put s "k" "second";
  Alcotest.(check (option string)) "latest wins" (Some "second") (get s "k")

let test_empty_value () =
  let s = make () in
  put s "empty" "";
  Alcotest.(check (option string)) "empty value" (Some "") (get s "empty")

let test_multi_chunk_value () =
  let s = make () in
  (* test_config max_chunk_payload = 96; value of 250 bytes -> 3 chunks *)
  let value = String.init 250 (fun i -> Char.chr (33 + (i mod 90))) in
  put s "big" value;
  Alcotest.(check (option string)) "multi-chunk roundtrip" (Some value) (get s "big")

let test_put_batch_matches_sequential () =
  let batch = List.init 10 (fun i -> (Printf.sprintf "bk%d" i, Printf.sprintf "value-%d" i)) in
  let sb = make () in
  (match S.put_batch sb batch with
  | Ok { S.results; barrier = _ } ->
    Alcotest.(check int) "one result per op" (List.length batch) (List.length results);
    List.iter
      (function Ok _ -> () | Error e -> Alcotest.failf "batch op: %a" S.pp_error e)
      results
  | Error e -> Alcotest.failf "put_batch: %a" S.pp_error e);
  (* Same workload through the scalar path: observable state must agree. *)
  let ss = make () in
  List.iter (fun (k, v) -> put ss k v) batch;
  List.iter
    (fun (k, _) ->
      Alcotest.(check (option string)) ("batch = sequential for " ^ k) (get ss k) (get sb k))
    batch;
  Alcotest.(check (list string)) "same key set" (ok (S.list ss)) (ok (S.list sb))

let test_put_batch_last_write_wins () =
  let s = make () in
  (match S.put_batch s [ ("dup", "first"); ("other", "x"); ("dup", "second") ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "put_batch: %a" S.pp_error e);
  Alcotest.(check (option string)) "in-batch overwrite, last wins" (Some "second") (get s "dup");
  Alcotest.(check (option string)) "other key intact" (Some "x") (get s "other")

let test_put_batch_group_commit_amortizes () =
  let s = make () in
  let obs = S.obs s in
  let appends_before = Obs.counter_value obs "iosched.append" in
  let n = 12 in
  (match S.put_batch s (List.init n (fun i -> (Printf.sprintf "g%d" i, String.make 20 'x'))) with
  | Ok { S.results; _ } ->
    List.iter
      (function Ok _ -> () | Error e -> Alcotest.failf "batch op: %a" S.pp_error e)
      results
  | Error e -> Alcotest.failf "put_batch: %a" S.pp_error e);
  let appends = Obs.counter_value obs "iosched.append" - appends_before in
  Alcotest.(check bool)
    (Printf.sprintf "group commit: %d appends for %d puts" appends n)
    true (appends < n);
  Alcotest.(check bool) "took the grouped chunk path" true
    (Obs.counter_value obs "chunk.batch_group" >= 1);
  Alcotest.(check int) "store.put_batch counted" 1 (Obs.counter_value obs "store.put_batch")

let test_put_batch_barrier () =
  let s = make () in
  match S.put_batch s [ ("a", "1"); ("b", "2"); ("c", "3") ] with
  | Error e -> Alcotest.failf "put_batch: %a" S.pp_error e
  | Ok { S.results; barrier } ->
    Alcotest.(check bool) "barrier volatile at first" false (Dep.is_persistent barrier);
    ignore (ok (S.flush_index s));
    ignore (ok (S.flush_superblock s));
    ignore (S.pump s 1000);
    Alcotest.(check bool) "barrier persistent after flush+pump" true (Dep.is_persistent barrier);
    List.iter
      (function
        | Ok d -> Alcotest.(check bool) "per-op dep persistent" true (Dep.is_persistent d)
        | Error e -> Alcotest.failf "batch op: %a" S.pp_error e)
      results

let test_delete_batch () =
  let s = make () in
  List.iter (fun k -> put s k ("v-" ^ k)) [ "a"; "b"; "c"; "d" ];
  (match S.delete_batch s [ "a"; "c"; "missing" ] with
  | Ok { S.results; _ } ->
    Alcotest.(check int) "one result per key" 3 (List.length results);
    List.iter
      (function Ok _ -> () | Error e -> Alcotest.failf "batch delete: %a" S.pp_error e)
      results
  | Error e -> Alcotest.failf "delete_batch: %a" S.pp_error e);
  Alcotest.(check (option string)) "a deleted" None (get s "a");
  Alcotest.(check (option string)) "c deleted" None (get s "c");
  Alcotest.(check (list string)) "survivors" [ "b"; "d" ] (ok (S.list s))

let test_batch_out_of_service () =
  let s = make () in
  ignore (ok (S.remove_from_service s));
  (match S.put_batch s [ ("k", "v") ] with
  | Error S.Out_of_service -> ()
  | _ -> Alcotest.fail "put_batch must reject out of service");
  match S.delete_batch s [ "k" ] with
  | Error S.Out_of_service -> ()
  | _ -> Alcotest.fail "delete_batch must reject out of service"

let test_clean_shutdown_forward_progress () =
  let s = make () in
  let deps = List.map (fun i -> ok (S.put s ~key:(string_of_int i) ~value:"v")) [ 1; 2; 3 ] in
  let d = ok (S.delete s ~key:"1") in
  ignore (ok (S.clean_shutdown s));
  List.iter
    (fun dep -> Alcotest.(check bool) "dep persistent after clean shutdown" true (Dep.is_persistent dep))
    (d :: deps)

let test_survives_clean_reboot () =
  let s = make () in
  put s "durable" "value";
  ignore (ok (S.clean_shutdown s));
  let s2 = S.of_disk S.test_config (S.disk s) in
  ignore (ok (S.recover s2));
  Alcotest.(check (option string)) "survives" (Some "value") (ok (S.get s2 ~key:"durable"))

let test_dirty_reboot_keeps_persistent_data () =
  let s = make () in
  let dep = ok (S.put s ~key:"k" ~value:"v") in
  ignore (ok (S.flush_index s));
  ignore (ok (S.flush_superblock s));
  ignore (S.pump s 1000);
  Alcotest.(check bool) "persistent before crash" true (Dep.is_persistent dep);
  let rng = Rng.create 77L in
  ignore
    (ok
       (S.dirty_reboot s ~rng
          {
            S.flush_index_first = false;
            flush_superblock_first = false;
            persist_probability = 0.0;
            split_pages = false;
          }));
  Alcotest.(check (option string)) "persistent data survives" (Some "v") (get s "k")

let test_dirty_reboot_may_lose_volatile_data () =
  let s = make () in
  let dep = ok (S.put s ~key:"k" ~value:"v") in
  Alcotest.(check bool) "not persistent" false (Dep.is_persistent dep);
  let rng = Rng.create 78L in
  ignore
    (ok
       (S.dirty_reboot s ~rng
          {
            S.flush_index_first = false;
            flush_superblock_first = false;
            persist_probability = 0.0;
            split_pages = false;
          }));
  Alcotest.(check (option string)) "unflushed put lost" None (get s "k")

let test_reclaim_recovers_space () =
  let s = make () in
  (* Fill with garbage: overwrite the same key repeatedly. *)
  for i = 0 to 11 do
    put s "churn" (String.make 90 (Char.chr (65 + i)))
  done;
  ignore (ok (S.flush_index s));
  let candidates = S.reclaimable_extents s in
  Alcotest.(check bool) "garbage exists" true (candidates <> []);
  (match ok (S.reclaim s ()) with
  | Some _ -> ()
  | None -> Alcotest.fail "reclamation should have work");
  Alcotest.(check (option string))
    "latest value intact" (Some (String.make 90 'L'))
    (get s "churn")

let test_reclaim_preserves_all_data () =
  let s = make () in
  let keys = List.init 6 (fun i -> Printf.sprintf "key%d" i) in
  List.iteri (fun i k -> put s k (String.make 50 (Char.chr (97 + i)))) keys;
  List.iter (fun k -> put s k "rewritten") keys;
  ignore (ok (S.flush_index s));
  let rec drain n =
    if n > 0 then
      match ok (S.reclaim s ()) with
      | Some _ -> drain (n - 1)
      | None -> ()
  in
  drain 10;
  List.iter
    (fun k -> Alcotest.(check (option string)) (k ^ " intact") (Some "rewritten") (get s k))
    keys

let test_put_until_full_then_reclaim () =
  let s = make () in
  (* Keep overwriting one key with large values until space pressure forces
     reclamation through the put path; the store must not lose the key. *)
  for i = 0 to 30 do
    match S.put s ~key:"pressure" ~value:(String.make 90 (Char.chr (48 + (i mod 70)))) with
    | Ok _ -> ()
    | Error S.No_space -> ()
    | Error e -> Alcotest.failf "unexpected error: %a" S.pp_error e
  done;
  Alcotest.(check bool) "key readable" true (get s "pressure" <> None)

let test_out_of_service_rejects () =
  let s = make () in
  put s "k" "v";
  ignore (ok (S.remove_from_service s));
  (match S.put s ~key:"x" ~value:"y" with
  | Error S.Out_of_service -> ()
  | _ -> Alcotest.fail "out-of-service must reject");
  ignore (ok (S.return_to_service s));
  Alcotest.(check (option string)) "data intact after return" (Some "v") (get s "k")

let test_f4_disk_return_loses_shards () =
  Faults.disable_all ();
  let s = make () in
  put s "kept" "v1";
  ignore (ok (S.flush_index s));
  ignore (ok (S.flush_superblock s));
  ignore (S.pump s 1000);
  put s "lost" "v2";
  Faults.enable Faults.F4_disk_return_loses_shards;
  ignore (ok (S.remove_from_service s));
  Faults.disable Faults.F4_disk_return_loses_shards;
  ignore (ok (S.return_to_service s));
  Alcotest.(check (option string)) "flushed shard survives" (Some "v1") (get s "kept");
  Alcotest.(check (option string)) "unflushed shard lost" None (get s "lost");
  Alcotest.(check bool) "fired" true (Faults.fired Faults.F4_disk_return_loses_shards > 0)

let test_compact_via_store () =
  let s = make () in
  put s "a" "1";
  ignore (ok (S.flush_index s));
  put s "b" "2";
  ignore (ok (S.flush_index s));
  Alcotest.(check bool) "several runs" true (S.index_run_count s >= 2);
  (* Levelled: each quiescent compact pushes one victim down; converge. *)
  for _ = 1 to 4 do
    ignore (ok (S.compact s));
    match S.level_invariants s with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "level invariants: %s" msg
  done;
  (* Converged: L0 drained into a deeper level (disjoint runs there are
     final — merging them would be pure write amplification). *)
  (match S.level_runs s with
  | 0 :: deeper when List.fold_left ( + ) 0 deeper >= 1 -> ()
  | shape ->
    Alcotest.failf "expected an empty L0, got [%s]"
      (String.concat ";" (List.map string_of_int shape)));
  Alcotest.(check (option string)) "a" (Some "1") (get s "a");
  Alcotest.(check (option string)) "b" (Some "2") (get s "b")

(* The store against the mocked index: the reference model as mock. *)
let test_mocked_store_basic () =
  let s = Mocked.create Mocked.test_config in
  (match Mocked.put s ~key:"m" ~value:"mock" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "mocked put: %a" Mocked.pp_error e);
  (match Mocked.get s ~key:"m" with
  | Ok (Some "mock") -> ()
  | _ -> Alcotest.fail "mocked get");
  (match Mocked.delete s ~key:"m" with Ok _ -> () | Error _ -> Alcotest.fail "mocked delete");
  match Mocked.get s ~key:"m" with
  | Ok None -> ()
  | _ -> Alcotest.fail "mocked delete visible"

let test_mocked_store_reclaim () =
  let s = Mocked.create Mocked.test_config in
  for i = 0 to 9 do
    ignore (Mocked.put s ~key:"churn" ~value:(String.make 80 (Char.chr (65 + i))))
  done;
  (match Mocked.reclaim s () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "mocked reclaim: %a" Mocked.pp_error e);
  match Mocked.get s ~key:"churn" with
  | Ok (Some v) -> Alcotest.(check string) "value intact" (String.make 80 'J') v
  | _ -> Alcotest.fail "mocked reclaim lost data"

(* Property: random crash-free workloads match the plain reference model. *)
let prop_random_workload_matches_model =
  QCheck.Test.make ~name:"random crash-free workload matches hash-map model" ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
      let s = make () in
      let model = Model.Kv_model.create () in
      let rng = Rng.create (Int64.of_int seed) in
      let keys = [| "a"; "b"; "c"; "d" |] in
      let steps = 40 in
      let okq = function
        | Ok v -> v
        | Error e -> QCheck.Test.fail_reportf "store error: %a" S.pp_error e
      in
      for _ = 1 to steps do
        let key = Rng.pick rng keys in
        match Rng.int rng 6 with
        | 0 | 1 -> (
          let value = Bytes.to_string (Rng.bytes rng (Rng.int rng 150)) in
          match S.put s ~key ~value with
          | Ok _ -> Model.Kv_model.put model ~key ~value
          | Error S.No_space -> () (* full disk: op rejected, model unchanged *)
          | Error e -> QCheck.Test.fail_reportf "store error: %a" S.pp_error e)
        | 2 ->
          ignore (okq (S.delete s ~key));
          Model.Kv_model.delete model ~key
        | 3 ->
          let expected = Model.Kv_model.get model ~key in
          let actual = okq (S.get s ~key) in
          if expected <> actual then
            QCheck.Test.fail_reportf "divergence on %S: model %s, impl %s" key
              (Option.value ~default:"<none>" expected)
              (Option.value ~default:"<none>" actual)
        | 4 -> (
          match S.flush_index s with
          | Ok _ | Error S.No_space -> ()
          | Error e -> QCheck.Test.fail_reportf "store error: %a" S.pp_error e)
        | _ -> ignore (S.pump s (Rng.int rng 8))
      done;
      List.for_all
        (fun key ->
          let expected = Model.Kv_model.get model ~key in
          expected = okq (S.get s ~key))
        (Array.to_list keys))

(* Property: after a random workload and a clean shutdown, a brand-new
   store opened on the same disk recovers exactly the model's state. *)
let prop_clean_reboot_equivalence =
  QCheck.Test.make ~name:"clean reboot preserves the full mapping" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let s = make () in
      let model = Model.Kv_model.create () in
      let rng = Rng.create (Int64.of_int seed) in
      let keys = [| "a"; "b"; "c"; "d" |] in
      for _ = 1 to 30 do
        let key = Rng.pick rng keys in
        match Rng.int rng 4 with
        | 0 | 1 -> (
          let value = Bytes.to_string (Rng.bytes rng (Rng.int rng 120)) in
          match S.put s ~key ~value with
          | Ok _ -> Model.Kv_model.put model ~key ~value
          | Error S.No_space -> ()
          | Error e -> QCheck.Test.fail_reportf "put: %a" S.pp_error e)
        | 2 -> (
          match S.delete s ~key with
          | Ok _ -> Model.Kv_model.delete model ~key
          | Error e -> QCheck.Test.fail_reportf "delete: %a" S.pp_error e)
        | _ -> ignore (S.pump s (Rng.int rng 6))
      done;
      match S.clean_shutdown s with
      | Error S.No_space -> true (* full disk: shutdown rejected, nothing to check *)
      | Error e -> QCheck.Test.fail_reportf "shutdown: %a" S.pp_error e
      | Ok () -> (
        let s2 = S.of_disk S.test_config (S.disk s) in
        match S.recover s2 with
        | Error e -> QCheck.Test.fail_reportf "recover: %a" S.pp_error e
        | Ok () ->
          (match S.list s2 with
          | Ok keys' ->
            if keys' <> Model.Kv_model.list model then
              QCheck.Test.fail_reportf "key set diverged after reboot"
          | Error e -> QCheck.Test.fail_reportf "list: %a" S.pp_error e);
          Array.for_all
            (fun key ->
              match S.get s2 ~key with
              | Ok v -> v = Model.Kv_model.get model ~key
              | Error _ -> false)
            keys))

(* {2 The shared-state store} *)

module Sh = Store.Shared

let sh_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "shared store error: %a" S.pp_error e

(* Single domain, mixed staged/drained state: every observation through
   Shared must equal what the same op sequence produces on a plain
   Default store. *)
let test_shared_matches_default_single_domain () =
  Faults.disable_all ();
  let sh = Sh.create ~shards:4 S.default_config in
  let ref_s = S.create S.default_config in
  let keys = [| "a"; "b"; "c"; "d"; "e" |] in
  let rng = Rng.create 99L in
  for i = 0 to 199 do
    let key = Rng.pick rng keys in
    match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 -> (
      let value = Printf.sprintf "v%d" i in
      sh_ok (Sh.put sh ~key ~value);
      match S.put ref_s ~key ~value with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "ref put: %a" S.pp_error e)
    | 4 -> (
      sh_ok (Sh.delete sh ~key);
      match S.delete ref_s ~key with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "ref delete: %a" S.pp_error e)
    | 5 ->
      (* flush drains staged mutations into the underlying store *)
      ignore (sh_ok (Sh.flush sh))
    | _ ->
      Alcotest.(check (option string))
        (Printf.sprintf "get %s at step %d" key i)
        (ok (S.get ref_s ~key))
        (sh_ok (Sh.get sh ~key))
  done;
  Alcotest.(check (list string)) "same key set" (ok (S.list ref_s)) (sh_ok (Sh.list sh));
  ignore (sh_ok (Sh.flush sh));
  Alcotest.(check int) "drained" 0 (Sh.staged_count sh);
  Array.iter
    (fun key ->
      Alcotest.(check (option string))
        ("post-drain " ^ key)
        (ok (S.get ref_s ~key))
        (ok (S.get (Sh.store sh) ~key)))
    keys

let test_shared_put_batch_groups_by_shard () =
  Faults.disable_all ();
  let sh = Sh.create ~shards:4 S.default_config in
  let batch = List.init 20 (fun i -> (Printf.sprintf "bk%d" i, Printf.sprintf "bv%d" i)) in
  let br = sh_ok (Sh.put_batch sh (batch @ [ ("bk0", "rewritten") ])) in
  Alcotest.(check int) "one outcome per op" 21 (List.length br.Sh.results);
  List.iteri
    (fun i r ->
      match r with
      | Ok () -> ()
      | Error e -> Alcotest.failf "batch op %d: %a" i S.pp_error e)
    br.Sh.results;
  Alcotest.(check (option string)) "last wins in batch" (Some "rewritten")
    (sh_ok (Sh.get sh ~key:"bk0"));
  List.iter
    (fun (k, v) ->
      if k <> "bk0" then
        Alcotest.(check (option string)) ("batched " ^ k) (Some v) (sh_ok (Sh.get sh ~key:k)))
    batch;
  ignore (sh_ok (Sh.flush sh));
  Alcotest.(check (option string)) "durable after drain" (Some "rewritten")
    (ok (S.get (Sh.store sh) ~key:"bk0"))

let test_shared_delete_batch () =
  Faults.disable_all ();
  let sh = Sh.create ~shards:4 S.default_config in
  List.iter
    (fun (k, v) -> sh_ok (Sh.put sh ~key:k ~value:v))
    [ ("da", "1"); ("db", "2"); ("dc", "3") ];
  let br = sh_ok (Sh.delete_batch sh [ "da"; "missing"; "dc" ]) in
  Alcotest.(check int) "one outcome per op" 3 (List.length br.Sh.results);
  List.iteri
    (fun i r ->
      match r with
      | Ok () -> ()
      | Error e -> Alcotest.failf "delete_batch op %d: %a" i S.pp_error e)
    br.Sh.results;
  Alcotest.(check (option string)) "da gone" None (sh_ok (Sh.get sh ~key:"da"));
  Alcotest.(check (option string)) "db kept" (Some "2") (sh_ok (Sh.get sh ~key:"db"));
  Alcotest.(check (option string)) "dc gone" None (sh_ok (Sh.get sh ~key:"dc"));
  ignore (sh_ok (Sh.flush sh));
  Alcotest.(check (list string)) "durable key set after drain" [ "db" ]
    (ok (S.list (Sh.store sh)))

(* The tentpole acceptance check, in-tree: a scan must yield byte-identical
   results from the levelled Default store (cursor drain), the Shared
   overlay (staged mutations applied over the drained scan), and the
   composed per-level reference model — at arbitrary points of a random
   workload, under arbitrary bounds, while flushes and compactions
   rearrange the runs underneath. *)
let drain_cursor s ?lo ?hi () =
  match S.scan s ?lo ?hi () with
  | Error e -> QCheck.Test.fail_reportf "scan open: %a" S.pp_error e
  | Ok cursor ->
    let rec go acc =
      match S.scan_next cursor with
      | Ok (Some kv) -> go (kv :: acc)
      | Ok None -> List.rev acc
      | Error e -> QCheck.Test.fail_reportf "scan_next: %a" S.pp_error e
    in
    go []

let prop_scan_three_way_identity =
  QCheck.Test.make ~name:"scan identity: Default = Shared = level model" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      Faults.disable_all ();
      let ref_s = S.create S.default_config in
      let sh = Sh.create ~shards:4 S.default_config in
      let lm = Model.Level_model.create () in
      let rng = Rng.create (Int64.of_int seed) in
      let keys = [| "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" |] in
      let bound () = if Rng.chance rng 0.3 then None else Some (Rng.pick rng keys) in
      let compare_scans step =
        let lo = bound () and hi = bound () in
        let lo, hi =
          match (lo, hi) with
          | Some l, Some h when String.compare l h > 0 -> (Some h, Some l)
          | b -> b
        in
        let expected = Model.Level_model.scan lm ~lo ~hi in
        let via_default = drain_cursor ref_s ?lo ?hi () in
        let via_shared =
          match Sh.scan sh ?lo ?hi () with
          | Ok pairs -> pairs
          | Error e -> QCheck.Test.fail_reportf "shared scan: %a" S.pp_error e
        in
        if via_default <> expected then
          QCheck.Test.fail_reportf "step %d: Default scan diverged from level model" step;
        if via_shared <> expected then
          QCheck.Test.fail_reportf "step %d: Shared scan diverged from level model" step
      in
      for step = 0 to 119 do
        let key = Rng.pick rng keys in
        match Rng.int rng 12 with
        | 0 | 1 | 2 | 3 | 4 -> (
          let value = Printf.sprintf "v%d-%d" seed step in
          Model.Level_model.put lm ~key ~value;
          sh_ok (Sh.put sh ~key ~value);
          match S.put ref_s ~key ~value with
          | Ok _ -> ()
          | Error e -> QCheck.Test.fail_reportf "put: %a" S.pp_error e)
        | 5 | 6 -> (
          Model.Level_model.delete lm ~key;
          sh_ok (Sh.delete sh ~key);
          match S.delete ref_s ~key with
          | Ok _ -> ()
          | Error e -> QCheck.Test.fail_reportf "delete: %a" S.pp_error e)
        | 7 -> (
          (* reshaping the runs must not change what a scan yields *)
          Model.Level_model.flush lm;
          ignore (sh_ok (Sh.flush sh));
          match S.flush_index ref_s with
          | Ok _ -> ()
          | Error e -> QCheck.Test.fail_reportf "flush_index: %a" S.pp_error e)
        | 8 -> (
          Model.Level_model.compact lm;
          match S.compact ref_s with
          | Ok _ -> ()
          | Error e -> QCheck.Test.fail_reportf "compact: %a" S.pp_error e)
        | _ -> compare_scans step
      done;
      compare_scans 120;
      (match S.level_invariants ref_s with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "level invariants: %s" msg);
      true)

(* Racing domains on one shared store: no errors, and after the joins the
   drained state serves every key consistently. The per-key
   linearizability gate lives in Experiments.Shared_lin / validate
   --shared; this is the in-tree smoke version. *)
let test_shared_multi_domain_smoke () =
  Faults.disable_all ();
  let sh = Sh.create ~shards:4 S.default_config in
  let domains = 4 and per_domain = 30 in
  let errors = Atomic.make 0 in
  let worker d () =
    let rng = Rng.create (Int64.of_int (1000 + d)) in
    for i = 0 to per_domain - 1 do
      let key = Printf.sprintf "k%d" (Rng.int rng 8) in
      let r =
        match Rng.int rng 4 with
        | 0 -> Result.map (fun _ -> ()) (Sh.get sh ~key)
        | 1 -> Sh.delete sh ~key
        | 2 -> Result.map (fun _ -> ()) (Sh.flush sh)
        | _ -> Sh.put sh ~key ~value:(Printf.sprintf "d%d-%d" d i)
      in
      match r with Ok () -> () | Error _ -> Atomic.incr errors
    done
  in
  let ds = List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1))) in
  worker 0 ();
  List.iter Domain.join ds;
  Alcotest.(check int) "no errors under contention" 0 (Atomic.get errors);
  ignore (sh_ok (Sh.flush sh));
  Alcotest.(check int) "fully drained" 0 (Sh.staged_count sh);
  (* overlay reads now agree with the underlying store for every key *)
  for i = 0 to 7 do
    let key = Printf.sprintf "k%d" i in
    Alcotest.(check (option string))
      ("consistent " ^ key)
      (ok (S.get (Sh.store sh) ~key))
      (sh_ok (Sh.get sh ~key))
  done

(* {2 The maintenance plane} *)

(* Foreground domains race a dedicated maintenance domain; every per-key
   history must still linearize against the register model, and the
   maintenance domain itself must finish with zero errors. *)
let test_shared_maint_racing_linearizable () =
  Faults.disable_all ();
  let r = Experiments.Shared_lin.run ~domains:3 ~ops_per_domain:40 ~maint:true () in
  if not (Experiments.Shared_lin.ok r) then
    Alcotest.failf "maintenance-racing run failed:@.%a" Experiments.Shared_lin.pp_report r;
  match r.Experiments.Shared_lin.maint with
  | None -> Alcotest.fail "no maintenance stats attached to the report"
  | Some s ->
    Alcotest.(check int) "maintenance errors" 0 s.Sh.Maint.errors;
    if s.Sh.Maint.steps = 0 then Alcotest.fail "maintenance domain never stepped"

(* Maint worker lifecycle against live foreground traffic from this
   domain: it must drain the staging layer on its own, finish with zero
   errors, and leave every key serving the last value written. *)
let test_shared_maint_worker_drains_live_traffic () =
  Faults.disable_all ();
  let sh = Sh.create ~shards:4 S.default_config in
  let w = Sh.Maint.start ~compact_every:8 ~reclaim_every:12 sh in
  for i = 0 to 199 do
    let key = Printf.sprintf "w%d" (i mod 8) in
    sh_ok (Sh.put sh ~key ~value:(Printf.sprintf "wv%d" i))
  done;
  (* wait (bounded) for the worker to drain what we staged *)
  let rec wait n = if Sh.staged_count sh > 0 && n > 0 then (Domain.cpu_relax (); wait (n - 1)) in
  wait 20_000_000;
  let stats = Sh.Maint.stop w in
  Alcotest.(check int) "maintenance errors" 0 stats.Sh.Maint.errors;
  if stats.Sh.Maint.flushes = 0 then Alcotest.fail "worker never flushed a shard";
  ignore (sh_ok (Sh.flush sh));
  for i = 0 to 7 do
    let key = Printf.sprintf "w%d" i in
    (* last write to w<i> was op 192+i *)
    Alcotest.(check (option string))
      ("drained " ^ key)
      (Some (Printf.sprintf "wv%d" (192 + i)))
      (ok (S.get (Sh.store sh) ~key))
  done

(* An open Default cursor on the underlying store pins its snapshot while
   the Shared maintenance plane rearranges everything underneath: shard
   flushes push staged overwrites into the base and compact rewrites the
   runs. The cursor must keep yielding exactly what was visible when it
   opened, and a fresh Shared scan afterwards sees the maintained state.
   (Reclaim is excluded mid-drain: it physically relocates extents, which
   the scan contract documents as out of scope for an open cursor — it
   runs after the drain instead.) *)
let test_shared_maint_scan_cursor_pinned () =
  Faults.disable_all ();
  let sh = Sh.create ~shards:4 ~flush_chunk:2 S.default_config in
  let expect = List.init 8 (fun i -> (Printf.sprintf "sk%d" i, Printf.sprintf "sv%d" i)) in
  List.iter (fun (k, v) -> sh_ok (Sh.put sh ~key:k ~value:v)) expect;
  ignore (sh_ok (Sh.flush sh));
  (* stage a second wave the cursor must NOT see *)
  List.iter (fun (k, _) -> sh_ok (Sh.put sh ~key:k ~value:"overwritten")) expect;
  sh_ok (Sh.put sh ~key:"sz-late" ~value:"late");
  let cursor = ok (S.scan (Sh.store sh) ()) in
  let rec drain i acc =
    match ok (S.scan_next cursor) with
    | None -> List.rev acc
    | Some kv ->
      (* one maintenance-plane op between every two cursor steps *)
      (match i mod 3 with
      | 0 -> ignore (sh_ok (Sh.flush_shard sh (i mod 4)))
      | 1 -> sh_ok (Sh.compact sh)
      | _ -> ignore (sh_ok (Sh.flush sh)));
      drain (i + 1) (kv :: acc)
  in
  let got = drain 0 [] in
  Alcotest.(check (list (pair string string))) "cursor pinned its snapshot" expect got;
  ignore (sh_ok (Sh.reclaim sh));
  let after = sh_ok (Sh.scan sh ()) in
  let expected_after =
    List.map (fun (k, _) -> (k, "overwritten")) expect @ [ ("sz-late", "late") ]
  in
  Alcotest.(check (list (pair string string)))
    "fresh scan sees maintained state" expected_after after

(* Single domain: a seeded op sequence with every maintenance-plane
   entry point interspersed must stay byte-identical to the same
   puts/deletes on a bare Default store — flush_shard, compact and
   reclaim may move data, never change it. *)
let test_shared_maint_matches_default_single_domain () =
  Faults.disable_all ();
  let sh = Sh.create ~shards:4 ~flush_chunk:3 S.default_config in
  let ref_s = S.create S.default_config in
  let keys = [| "ma"; "mb"; "mc"; "md"; "me"; "mf" |] in
  let rng = Rng.create 4242L in
  for i = 0 to 249 do
    let key = Rng.pick rng keys in
    match Rng.int rng 12 with
    | 0 | 1 | 2 | 3 | 4 ->
      let value = Printf.sprintf "mv%d" i in
      sh_ok (Sh.put sh ~key ~value);
      ignore (ok (S.put ref_s ~key ~value))
    | 5 ->
      sh_ok (Sh.delete sh ~key);
      ignore (ok (S.delete ref_s ~key))
    | 6 -> ignore (sh_ok (Sh.flush_shard sh (i mod 4)))
    | 7 -> sh_ok (Sh.compact sh)
    | 8 -> ignore (sh_ok (Sh.reclaim sh))
    | _ ->
      Alcotest.(check (option string))
        (Printf.sprintf "get %s at step %d" key i)
        (ok (S.get ref_s ~key))
        (sh_ok (Sh.get sh ~key))
  done;
  Alcotest.(check (list string)) "same key set" (ok (S.list ref_s)) (sh_ok (Sh.list sh));
  Array.iter
    (fun key ->
      Alcotest.(check (option string))
        ("final " ^ key)
        (ok (S.get ref_s ~key))
        (sh_ok (Sh.get sh ~key)))
    keys;
  sh_ok (Sh.clean_shutdown sh);
  Alcotest.(check int) "clean shutdown drains staging" 0 (Sh.staged_count sh)

(* A crash through the Shared plane: staged-but-unflushed entries are
   volatile by design — a dirty reboot drops them, while everything the
   maintenance plane already drained survives per the Default store's
   durability contract (clean_reboot_spec loses nothing persistent). *)
let test_shared_dirty_reboot_drops_staged () =
  Faults.disable_all ();
  let sh = Sh.create ~shards:2 S.default_config in
  sh_ok (Sh.put sh ~key:"durable" ~value:"kept");
  ignore (sh_ok (Sh.flush sh));
  sh_ok (Sh.put sh ~key:"staged-only" ~value:"lost");
  let rng = Rng.create 7L in
  sh_ok (Sh.dirty_reboot sh ~rng S.clean_reboot_spec);
  Alcotest.(check int) "staging dropped" 0 (Sh.staged_count sh);
  Alcotest.(check (option string)) "drained entry survives" (Some "kept")
    (sh_ok (Sh.get sh ~key:"durable"));
  Alcotest.(check (option string)) "staged entry lost" None
    (sh_ok (Sh.get sh ~key:"staged-only"))

let () =
  Faults.disable_all ();
  Faults.reset_counters ();
  Alcotest.run "store"
    [
      ( "request plane",
        [
          Alcotest.test_case "put/get/delete/list" `Quick test_put_get_delete;
          Alcotest.test_case "overwrite" `Quick test_overwrite;
          Alcotest.test_case "empty value" `Quick test_empty_value;
          Alcotest.test_case "multi-chunk value" `Quick test_multi_chunk_value;
          QCheck_alcotest.to_alcotest prop_random_workload_matches_model;
        ] );
      ( "batching",
        [
          Alcotest.test_case "put_batch matches sequential" `Quick
            test_put_batch_matches_sequential;
          Alcotest.test_case "in-batch overwrite" `Quick test_put_batch_last_write_wins;
          Alcotest.test_case "group commit amortizes appends" `Quick
            test_put_batch_group_commit_amortizes;
          Alcotest.test_case "batch barrier durability" `Quick test_put_batch_barrier;
          Alcotest.test_case "delete_batch" `Quick test_delete_batch;
          Alcotest.test_case "batch rejects out of service" `Quick test_batch_out_of_service;
        ] );
      ( "durability",
        [
          Alcotest.test_case "clean shutdown forward progress" `Quick
            test_clean_shutdown_forward_progress;
          Alcotest.test_case "survives clean reboot" `Quick test_survives_clean_reboot;
          Alcotest.test_case "dirty reboot keeps persistent data" `Quick
            test_dirty_reboot_keeps_persistent_data;
          Alcotest.test_case "dirty reboot may lose volatile data" `Quick
            test_dirty_reboot_may_lose_volatile_data;
          QCheck_alcotest.to_alcotest prop_clean_reboot_equivalence;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "reclaim recovers space" `Quick test_reclaim_recovers_space;
          Alcotest.test_case "reclaim preserves data" `Quick test_reclaim_preserves_all_data;
          Alcotest.test_case "space pressure" `Quick test_put_until_full_then_reclaim;
          Alcotest.test_case "compact" `Quick test_compact_via_store;
        ] );
      ( "control plane",
        [
          Alcotest.test_case "out of service rejects" `Quick test_out_of_service_rejects;
          Alcotest.test_case "#4 disk return loses shards" `Quick test_f4_disk_return_loses_shards;
        ] );
      ( "mocked index",
        [
          Alcotest.test_case "basic" `Quick test_mocked_store_basic;
          Alcotest.test_case "reclaim with mock" `Quick test_mocked_store_reclaim;
        ] );
      ( "shared",
        [
          Alcotest.test_case "matches Default single-domain" `Quick
            test_shared_matches_default_single_domain;
          Alcotest.test_case "put_batch groups by shard" `Quick
            test_shared_put_batch_groups_by_shard;
          Alcotest.test_case "delete_batch per-op results" `Quick test_shared_delete_batch;
          Alcotest.test_case "multi-domain smoke" `Quick test_shared_multi_domain_smoke;
        ] );
      ( "maintenance plane (shared)",
        [
          Alcotest.test_case "racing maintenance domain linearizes" `Quick
            test_shared_maint_racing_linearizable;
          Alcotest.test_case "maint worker drains live traffic" `Quick
            test_shared_maint_worker_drains_live_traffic;
          Alcotest.test_case "open cursor pinned during maintenance" `Quick
            test_shared_maint_scan_cursor_pinned;
          Alcotest.test_case "maintenance ops match Default" `Quick
            test_shared_maint_matches_default_single_domain;
          Alcotest.test_case "dirty reboot drops staged entries" `Quick
            test_shared_dirty_reboot_drops_staged;
        ] );
      ( "scan",
        [ QCheck_alcotest.to_alcotest prop_scan_three_way_identity ] );
    ]
