(* Bench_record resolves the current commit by reading the repository
   directly — no subprocess — so every .git layout git produces must be
   handled: plain directories, packed refs, detached HEADs, and worktrees
   where [.git] is a "gitdir:" indirection file and refs live behind a
   [commondir] pointer. Each layout is built by hand in a temp dir. *)

let hash1 = "1111111111111111111111111111111111111111"
let hash2 = "2222222222222222222222222222222222222222"
let hash3 = "3333333333333333333333333333333333333333"

let rec mkdirs path =
  if not (Sys.file_exists path) then begin
    mkdirs (Filename.dirname path);
    Sys.mkdir path 0o755
  end

let write path contents =
  mkdirs (Filename.dirname path);
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_tmp f =
  let dir = Filename.temp_file "benchrec_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let ( / ) = Filename.concat

let test_plain_checkout () =
  with_tmp (fun tmp ->
      let root = tmp / "main" in
      write (root / ".git" / "HEAD") "ref: refs/heads/main\n";
      write (root / ".git" / "refs" / "heads" / "main") (hash1 ^ "\n");
      Alcotest.(check string) "loose ref" hash1 (Bench_record.commit ~dir:root ());
      (* discovery walks up from a subdirectory *)
      mkdirs (root / "lib" / "store");
      Alcotest.(check string) "from subdir" hash1
        (Bench_record.commit ~dir:(root / "lib" / "store") ()))

let test_packed_refs () =
  with_tmp (fun tmp ->
      let root = tmp / "main" in
      write (root / ".git" / "HEAD") "ref: refs/heads/pk\n";
      write (root / ".git" / "packed-refs")
        ("# pack-refs with: peeled fully-peeled sorted\n" ^ hash2 ^ " refs/heads/pk\n");
      Alcotest.(check string) "packed ref" hash2 (Bench_record.commit ~dir:root ()))

let test_detached_head () =
  with_tmp (fun tmp ->
      let root = tmp / "main" in
      write (root / ".git" / "HEAD") (hash3 ^ "\n");
      Alcotest.(check string) "detached" hash3 (Bench_record.commit ~dir:root ()))

let test_worktree_gitdir () =
  with_tmp (fun tmp ->
      let main = tmp / "main" and wt = tmp / "wt" in
      write (main / ".git" / "HEAD") "ref: refs/heads/main\n";
      write (main / ".git" / "refs" / "heads" / "main") (hash1 ^ "\n");
      write (main / ".git" / "refs" / "heads" / "feature") (hash2 ^ "\n");
      write (main / ".git" / "worktrees" / "wt" / "HEAD") "ref: refs/heads/feature\n";
      write (main / ".git" / "worktrees" / "wt" / "commondir") "../..\n";
      mkdirs wt;
      write (wt / ".git") ("gitdir: " ^ (".." / "main" / ".git" / "worktrees" / "wt") ^ "\n");
      Alcotest.(check string) "worktree HEAD via commondir" hash2
        (Bench_record.commit ~dir:wt ());
      Alcotest.(check string) "primary checkout unaffected" hash1
        (Bench_record.commit ~dir:main ()))

let test_worktree_packed_ref () =
  with_tmp (fun tmp ->
      let main = tmp / "main" and wt = tmp / "wt" in
      write (main / ".git" / "HEAD") "ref: refs/heads/main\n";
      write (main / ".git" / "packed-refs") (hash3 ^ " refs/heads/feature\n");
      write (main / ".git" / "worktrees" / "wt" / "HEAD") "ref: refs/heads/feature\n";
      write (main / ".git" / "worktrees" / "wt" / "commondir") "../..\n";
      mkdirs wt;
      write (wt / ".git") ("gitdir: " ^ (".." / "main" / ".git" / "worktrees" / "wt") ^ "\n");
      Alcotest.(check string) "worktree ref from primary packed-refs" hash3
        (Bench_record.commit ~dir:wt ()))

let test_no_repository () =
  with_tmp (fun tmp ->
      (* no .git anywhere under tmp; discovery may still escape upward and
         find an enclosing checkout, so only assert it never raises *)
      let (_ : string) = Bench_record.commit ~dir:tmp () in
      ())

let () =
  Alcotest.run "benchrec"
    [
      ( "commit",
        [
          Alcotest.test_case "plain checkout" `Quick test_plain_checkout;
          Alcotest.test_case "packed refs" `Quick test_packed_refs;
          Alcotest.test_case "detached HEAD" `Quick test_detached_head;
          Alcotest.test_case "worktree gitdir file" `Quick test_worktree_gitdir;
          Alcotest.test_case "worktree packed ref" `Quick test_worktree_packed_ref;
          Alcotest.test_case "no repository" `Quick test_no_repository;
        ] );
    ]
