(* Tests for the buffer cache: hit/miss behaviour, invalidation on write
   and reset, LRU eviction, and the fault #2 site. *)


let config = { Disk.extent_count = 4; pages_per_extent = 4; page_size = 16 }

let make ?capacity_pages () =
  let disk = Disk.create config in
  let sched = Io_sched.create ~seed:6L disk in
  (disk, sched, Cache.create ?capacity_pages sched)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "error: %a" Io_sched.pp_error e

let append sched ~extent data =
  ignore (ok (Io_sched.append sched ~extent ~data ~input:Dep.trivial))

let test_read_through () =
  let _, sched, cache = make () in
  append sched ~extent:0 "hello-world-data";
  Alcotest.(check string) "read" "hello-world-data" (ok (Cache.read cache ~extent:0 ~off:0 ~len:16));
  Alcotest.(check string) "cached read" "hello-world-data"
    (ok (Cache.read cache ~extent:0 ~off:0 ~len:16));
  let st = Cache.stats cache in
  Alcotest.(check bool) "second read hit" true (st.Cache.hits > 0)

let test_cross_page_read () =
  let _, sched, cache = make () in
  append sched ~extent:0 (String.init 40 (fun i -> Char.chr (65 + (i mod 26))));
  let direct = ok (Io_sched.read sched ~extent:0 ~off:10 ~len:25) in
  Alcotest.(check string) "spanning pages" direct (ok (Cache.read cache ~extent:0 ~off:10 ~len:25))

let test_read_beyond_pointer () =
  let _, _, cache = make () in
  match Cache.read cache ~extent:0 ~off:0 ~len:4 with
  | Error (Io_sched.Io (Disk.Out_of_bounds _)) -> ()
  | _ -> Alcotest.fail "read beyond soft pointer must fail"

let test_note_write_invalidates_tail () =
  let _, sched, cache = make () in
  append sched ~extent:0 "abc";
  Alcotest.(check string) "partial page" "abc" (ok (Cache.read cache ~extent:0 ~off:0 ~len:3));
  append sched ~extent:0 "def";
  Cache.note_write cache ~extent:0 ~off:3 ~len:3;
  Alcotest.(check string) "extended" "abcdef" (ok (Cache.read cache ~extent:0 ~off:0 ~len:6))

let test_note_reset_invalidates () =
  let _, sched, cache = make () in
  append sched ~extent:0 "old-data-in-page";
  ignore (ok (Cache.read cache ~extent:0 ~off:0 ~len:16));
  ignore (ok (Io_sched.reset sched ~extent:0 ~input:Dep.trivial));
  Cache.note_reset cache ~extent:0;
  append sched ~extent:0 "new-data-in-page";
  Alcotest.(check string) "fresh after reset" "new-data-in-page"
    (ok (Cache.read cache ~extent:0 ~off:0 ~len:16))

let test_f2_serves_stale_after_reset () =
  Faults.disable_all ();
  let _, sched, cache = make () in
  append sched ~extent:0 "old-data-in-page";
  ignore (ok (Cache.read cache ~extent:0 ~off:0 ~len:16));
  ignore (ok (Io_sched.reset sched ~extent:0 ~input:Dep.trivial));
  Faults.enable Faults.F2_cache_not_drained;
  Cache.note_reset cache ~extent:0;
  Faults.disable Faults.F2_cache_not_drained;
  append sched ~extent:0 "new-data-in-page";
  Alcotest.(check string) "stale page served" "old-data-in-page"
    (ok (Cache.read cache ~extent:0 ~off:0 ~len:16));
  Alcotest.(check bool) "fired" true (Faults.fired Faults.F2_cache_not_drained > 0)

let test_eviction () =
  let _, sched, cache = make ~capacity_pages:2 () in
  append sched ~extent:0 (String.make 64 'a');
  append sched ~extent:1 (String.make 64 'b');
  (* Touch 6 distinct pages with capacity 2. *)
  for page = 0 to 2 do
    ignore (ok (Cache.read cache ~extent:0 ~off:(page * 16) ~len:16));
    ignore (ok (Cache.read cache ~extent:1 ~off:(page * 16) ~len:16))
  done;
  let st = Cache.stats cache in
  Alcotest.(check bool) "evictions happened" true (st.Cache.evictions > 0)

let test_miss_hits_injected_fault () =
  let disk, sched, cache = make () in
  append sched ~extent:0 "payload-goes-here";
  Disk.fail_once disk ~extent:0;
  (match Cache.read cache ~extent:0 ~off:0 ~len:8 with
  | Error (Io_sched.Io Disk.Transient) -> ()
  | _ -> Alcotest.fail "miss must surface injected fault");
  (* After the failure the entry is uncached; a retry succeeds. *)
  Alcotest.(check string) "retry" "payload-" (ok (Cache.read cache ~extent:0 ~off:0 ~len:8))

let test_hit_bypasses_injected_fault () =
  let disk, sched, cache = make () in
  append sched ~extent:0 "payload-goes-here";
  ignore (ok (Cache.read cache ~extent:0 ~off:0 ~len:16));
  Disk.fail_once disk ~extent:0;
  Alcotest.(check string) "hit bypasses disk" "payload-"
    (ok (Cache.read cache ~extent:0 ~off:0 ~len:8));
  Disk.heal disk ~extent:0

let test_invalidate_all () =
  let _, sched, cache = make () in
  append sched ~extent:0 "payload-goes-here";
  ignore (ok (Cache.read cache ~extent:0 ~off:0 ~len:16));
  Cache.invalidate_all cache;
  ignore (ok (Cache.read cache ~extent:0 ~off:0 ~len:16));
  let st = Cache.stats cache in
  Alcotest.(check int) "two misses" 2 st.Cache.misses

let test_write_allocate_hits () =
  let disk = Disk.create config in
  let sched = Io_sched.create ~seed:6L disk in
  let cache = Cache.create ~write_allocate:true sched in
  Alcotest.(check bool) "mode" true (Cache.write_allocate cache);
  let data = String.make 32 'w' in
  (match Io_sched.append sched ~extent:0 ~data ~input:Dep.trivial with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "append");
  Cache.fill cache ~extent:0 ~off:0 data;
  (match Cache.read cache ~extent:0 ~off:0 ~len:32 with
  | Ok got -> Alcotest.(check string) "filled data" data got
  | Error _ -> Alcotest.fail "read");
  let st = Cache.stats cache in
  Alcotest.(check int) "no miss" 0 st.Cache.misses

let test_fill_noop_without_write_allocate () =
  let disk = Disk.create config in
  let sched = Io_sched.create ~seed:6L disk in
  let cache = Cache.create sched in
  (match Io_sched.append sched ~extent:0 ~data:(String.make 16 'x') ~input:Dep.trivial with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "append");
  Cache.fill cache ~extent:0 ~off:0 (String.make 16 'x');
  ignore (Cache.read cache ~extent:0 ~off:0 ~len:16);
  let st = Cache.stats cache in
  Alcotest.(check int) "read missed (fill was a no-op)" 1 st.Cache.misses

let test_f17_corrupts_only_miss_path () =
  Faults.disable_all ();
  let disk = Disk.create config in
  let sched = Io_sched.create ~seed:6L disk in
  let cache = Cache.create ~write_allocate:true sched in
  let data = String.make 16 'd' in
  (match Io_sched.append sched ~extent:0 ~data ~input:Dep.trivial with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "append");
  Cache.fill cache ~extent:0 ~off:0 data;
  Faults.enable Faults.F17_cache_miss_path;
  (* hit path: clean data despite the armed defect *)
  (match Cache.read cache ~extent:0 ~off:0 ~len:16 with
  | Ok got -> Alcotest.(check string) "hit unaffected" data got
  | Error _ -> Alcotest.fail "read");
  (* evict by invalidating, forcing the miss path *)
  Cache.invalidate_all cache;
  (match Cache.read cache ~extent:0 ~off:0 ~len:16 with
  | Ok got -> Alcotest.(check bool) "miss corrupted" true (got <> data)
  | Error _ -> Alcotest.fail "read");
  Faults.disable_all ();
  Alcotest.(check bool) "fired" true (Faults.fired Faults.F17_cache_miss_path > 0)

let test_coverage_counters () =
  Util.Coverage.reset ();
  let disk = Disk.create config in
  let sched = Io_sched.create ~seed:6L disk in
  let cache = Cache.create sched in
  (match Io_sched.append sched ~extent:0 ~data:(String.make 16 'x') ~input:Dep.trivial with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "append");
  ignore (Cache.read cache ~extent:0 ~off:0 ~len:16);
  ignore (Cache.read cache ~extent:0 ~off:0 ~len:16);
  Alcotest.(check int) "miss counted" 1 (Util.Coverage.count "cache.miss");
  Alcotest.(check int) "hit counted" 1 (Util.Coverage.count "cache.hit");
  Alcotest.(check (list string)) "blind spot listing" [ "cache.eviction" ]
    (Util.Coverage.blind_spots ~expected:[ "cache.hit"; "cache.miss"; "cache.eviction" ] ())

(* Every page entry moves through the Empty/Reading/Clean lifecycle and
   each observed transition is audited against Conc.Cache_sm.legal. A
   workload covering miss-fill, eviction, invalidation and the write path
   must leave a positive checked count and zero violations. *)
let test_lifecycle_audit_clean () =
  Faults.disable_all ();
  let _, sched, cache = make ~capacity_pages:2 () in
  append sched ~extent:0 (String.make 64 'a');
  append sched ~extent:1 (String.make 32 'b');
  ignore (ok (Cache.read cache ~extent:0 ~off:0 ~len:16));
  ignore (ok (Cache.read cache ~extent:0 ~off:0 ~len:16));
  (* touch enough distinct pages to force LRU eviction (capacity 2) *)
  ignore (ok (Cache.read cache ~extent:0 ~off:16 ~len:16));
  ignore (ok (Cache.read cache ~extent:0 ~off:32 ~len:16));
  ignore (ok (Cache.read cache ~extent:1 ~off:0 ~len:16));
  append sched ~extent:1 "xx";
  Cache.note_write cache ~extent:1 ~off:32 ~len:2;
  Cache.invalidate_all cache;
  ignore (ok (Cache.read cache ~extent:0 ~off:0 ~len:16));
  Alcotest.(check bool) "transitions audited" true (Cache.transitions_checked cache > 0);
  Alcotest.(check int) "no illegal transitions" 0
    (List.length (Cache.transition_violations cache))

let () =
  Faults.disable_all ();
  Faults.reset_counters ();
  Alcotest.run "cache"
    [
      ( "cache",
        [
          Alcotest.test_case "read through" `Quick test_read_through;
          Alcotest.test_case "cross page read" `Quick test_cross_page_read;
          Alcotest.test_case "read beyond pointer" `Quick test_read_beyond_pointer;
          Alcotest.test_case "write invalidates tail" `Quick test_note_write_invalidates_tail;
          Alcotest.test_case "reset invalidates" `Quick test_note_reset_invalidates;
          Alcotest.test_case "eviction" `Quick test_eviction;
          Alcotest.test_case "invalidate all" `Quick test_invalidate_all;
          Alcotest.test_case "write allocate" `Quick test_write_allocate_hits;
          Alcotest.test_case "fill no-op without write allocate" `Quick
            test_fill_noop_without_write_allocate;
          Alcotest.test_case "coverage counters" `Quick test_coverage_counters;
          Alcotest.test_case "lifecycle audit clean" `Quick test_lifecycle_audit_clean;
        ] );
      ( "faults",
        [
          Alcotest.test_case "#2 stale after reset" `Quick test_f2_serves_stale_after_reset;
          Alcotest.test_case "miss hits injected fault" `Quick test_miss_hits_injected_fault;
          Alcotest.test_case "hit bypasses injected fault" `Quick test_hit_bypasses_injected_fault;
          Alcotest.test_case "#17 corrupts only the miss path" `Quick
            test_f17_corrupts_only_miss_path;
        ] );
    ]
