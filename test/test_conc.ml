(* Tests for the concurrency harnesses: every Fig. 5 concurrency issue is
   found by stateless model checking, and the corrected components are
   clean under the same exploration budgets. *)

let dfs = Smc.Dfs { max_schedules = 100_000 }

let expect_violation name outcome pred =
  match outcome.Smc.violation with
  | Some v when pred v.Smc.kind -> ()
  | _ -> Alcotest.failf "%s: expected violation, got %a" name Smc.pp_outcome outcome

let expect_clean name outcome =
  match outcome.Smc.violation with
  | None -> ()
  | Some _ -> Alcotest.failf "%s: unexpected violation: %a" name Smc.pp_outcome outcome

let is_assertion = function Smc.Assertion _ -> true | _ -> false
let is_deadlock = function Smc.Deadlock _ -> true | _ -> false

let test_f11 () =
  expect_violation "#11" (Conc.Conc_detect.detect dfs Faults.F11_locator_race) is_assertion;
  expect_clean "#11 correct" (Conc.Conc_detect.check_correct dfs Faults.F11_locator_race)

let test_f12 () =
  expect_violation "#12"
    (Conc.Conc_detect.detect dfs Faults.F12_buffer_pool_deadlock)
    is_deadlock;
  expect_clean "#12 correct" (Conc.Conc_detect.check_correct dfs Faults.F12_buffer_pool_deadlock)

let test_f13 () =
  expect_violation "#13" (Conc.Conc_detect.detect dfs Faults.F13_list_remove_race) is_assertion;
  expect_clean "#13 correct" (Conc.Conc_detect.check_correct dfs Faults.F13_list_remove_race)

let test_f14 () =
  expect_violation "#14"
    (Conc.Conc_detect.detect dfs Faults.F14_compaction_reclaim_race)
    is_assertion;
  expect_clean "#14 correct"
    (Conc.Conc_detect.check_correct (Smc.Dfs { max_schedules = 50_000 })
       Faults.F14_compaction_reclaim_race)

let test_f14_pct () =
  (* The Shuttle-style randomized strategies find the Fig. 4 race too. *)
  expect_violation "#14 pct"
    (Conc.Conc_detect.detect (Smc.Pct { seed = 3; schedules = 50_000; depth = 3 })
       Faults.F14_compaction_reclaim_race)
    is_assertion;
  expect_violation "#14 random"
    (Conc.Conc_detect.detect (Smc.Random_walk { seed = 3; schedules = 50_000 })
       Faults.F14_compaction_reclaim_race)
    is_assertion

let test_f16 () =
  expect_violation "#16"
    (Conc.Conc_detect.detect dfs Faults.F16_bulk_create_remove_race)
    is_assertion;
  expect_clean "#16 correct"
    (Conc.Conc_detect.check_correct dfs Faults.F16_bulk_create_remove_race)

let test_non_concurrency_fault_rejected () =
  match Conc.Conc_detect.detect dfs Faults.F1_reclaim_off_by_one with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* {2 Sequential sanity of the concurrent components} *)

let test_conc_index_sequential () =
  Faults.disable_all ();
  let index = Conc.Conc_index.create () in
  Conc.Conc_index.put index ~key:1 ~value:10;
  Conc.Conc_index.put index ~key:2 ~value:20;
  Alcotest.(check (option int)) "memtable get" (Some 10) (Conc.Conc_index.get index ~key:1);
  Conc.Conc_index.compact index;
  Alcotest.(check (option int)) "chunk get" (Some 10) (Conc.Conc_index.get index ~key:1);
  Alcotest.(check bool) "chunk on open extent" true (Conc.Conc_index.chunks_on index ~extent:0 > 0);
  Conc.Conc_index.reclaim index ~extent:0;
  Alcotest.(check int) "extent reset" 0 (Conc.Conc_index.chunks_on index ~extent:0);
  Alcotest.(check (option int)) "evacuated get" (Some 10) (Conc.Conc_index.get index ~key:1);
  Conc.Conc_index.put index ~key:1 ~value:11;
  Alcotest.(check (option int)) "overwrite" (Some 11) (Conc.Conc_index.get index ~key:1);
  Alcotest.(check (option int)) "missing" None (Conc.Conc_index.get index ~key:9)

let test_shard_map_sequential () =
  Faults.disable_all ();
  let map = Conc.Shard_map.create () in
  Conc.Shard_map.bulk_create map [ 1; 2; 3 ];
  Alcotest.(check bool) "mem" true (Conc.Shard_map.mem map 2);
  Conc.Shard_map.bulk_remove map [ 2 ];
  Alcotest.(check bool) "removed" false (Conc.Shard_map.mem map 2);
  Alcotest.(check int) "list" 2 (List.length (Conc.Shard_map.list map))

let test_conc_chunks_sequential () =
  Faults.disable_all ();
  let store = Conc.Conc_chunks.create () in
  Conc.Conc_chunks.put store ~payload:5;
  (match Conc.Conc_chunks.published store with
  | [ locator ] ->
    Alcotest.(check (option int)) "read" (Some 5) (Conc.Conc_chunks.read store ~locator)
  | _ -> Alcotest.fail "expected one locator");
  Alcotest.(check (option int)) "bad locator" None (Conc.Conc_chunks.read store ~locator:99)

(* {2 Linearizability of the concurrent index} *)

type op = Put of int * int | Get of int

let index_apply state = function
  | Put (k, v) -> ((k, v) :: List.remove_assoc k state, None)
  | Get k -> (state, List.assoc_opt k state)

let test_conc_index_linearizable () =
  Faults.disable_all ();
  let body () =
    let index = Conc.Conc_index.create () in
    Conc.Conc_index.put index ~key:1 ~value:10;
    Conc.Conc_index.compact index;
    let rec_ = Linearize.Recorder.create () in
    let done_ = Smc.Cell.make 0 in
    Smc.spawn (fun () ->
        Conc.Conc_index.reclaim index ~extent:0;
        ignore (Smc.Cell.update done_ (fun d -> d + 1)));
    Smc.spawn (fun () ->
        ignore
          (Linearize.Recorder.record rec_ (Put (1, 11)) (fun () ->
               Conc.Conc_index.put index ~key:1 ~value:11;
               None));
        ignore
          (Linearize.Recorder.record rec_ (Get 1) (fun () -> Conc.Conc_index.get index ~key:1));
        ignore (Smc.Cell.update done_ (fun d -> d + 1)));
    Smc.spawn (fun () ->
        ignore
          (Linearize.Recorder.record rec_ (Get 1) (fun () -> Conc.Conc_index.get index ~key:1));
        ignore (Smc.Cell.update done_ (fun d -> d + 1)));
    Smc.wait_until (fun () -> Smc.Cell.peek done_ = 3);
    if
      not
        (Linearize.check ~init:[ (1, 10) ] ~apply:index_apply ~equal_res:( = )
           (Linearize.Recorder.history rec_))
    then failwith "index history not linearizable"
  in
  expect_clean "linearizable under reclamation"
    (Smc.explore (Smc.Random_walk { seed = 11; schedules = 5_000 }) body)

let () =
  Faults.disable_all ();
  Faults.reset_counters ();
  Alcotest.run "conc"
    [
      ( "detection",
        [
          Alcotest.test_case "#11 locator race" `Quick test_f11;
          Alcotest.test_case "#12 buffer pool deadlock" `Quick test_f12;
          Alcotest.test_case "#13 list/remove race" `Quick test_f13;
          Alcotest.test_case "#14 compaction/reclamation race" `Quick test_f14;
          Alcotest.test_case "#14 via randomized strategies" `Quick test_f14_pct;
          Alcotest.test_case "#16 bulk race" `Quick test_f16;
          Alcotest.test_case "non-concurrency fault rejected" `Quick
            test_non_concurrency_fault_rejected;
        ] );
      ( "components",
        [
          Alcotest.test_case "index sequential" `Quick test_conc_index_sequential;
          Alcotest.test_case "shard map sequential" `Quick test_shard_map_sequential;
          Alcotest.test_case "chunk store sequential" `Quick test_conc_chunks_sequential;
        ] );
      ( "linearizability",
        [ Alcotest.test_case "index linearizable" `Quick test_conc_index_linearizable ] );
    ]
