(* Tests for the concurrency harnesses: every Fig. 5 concurrency issue is
   found by stateless model checking, and the corrected components are
   clean under the same exploration budgets. *)

let dfs = Smc.Dfs { max_schedules = 100_000 }

let expect_violation name outcome pred =
  match outcome.Smc.violation with
  | Some v when pred v.Smc.kind -> ()
  | _ -> Alcotest.failf "%s: expected violation, got %a" name Smc.pp_outcome outcome

let expect_clean name outcome =
  match outcome.Smc.violation with
  | None -> ()
  | Some _ -> Alcotest.failf "%s: unexpected violation: %a" name Smc.pp_outcome outcome

let is_assertion = function Smc.Assertion _ -> true | _ -> false
let is_deadlock = function Smc.Deadlock _ -> true | _ -> false

let test_f11 () =
  expect_violation "#11" (Conc.Conc_detect.detect dfs Faults.F11_locator_race) is_assertion;
  expect_clean "#11 correct" (Conc.Conc_detect.check_correct dfs Faults.F11_locator_race)

let test_f12 () =
  expect_violation "#12"
    (Conc.Conc_detect.detect dfs Faults.F12_buffer_pool_deadlock)
    is_deadlock;
  expect_clean "#12 correct" (Conc.Conc_detect.check_correct dfs Faults.F12_buffer_pool_deadlock)

let test_f13 () =
  expect_violation "#13" (Conc.Conc_detect.detect dfs Faults.F13_list_remove_race) is_assertion;
  expect_clean "#13 correct" (Conc.Conc_detect.check_correct dfs Faults.F13_list_remove_race)

let test_f14 () =
  expect_violation "#14"
    (Conc.Conc_detect.detect dfs Faults.F14_compaction_reclaim_race)
    is_assertion;
  expect_clean "#14 correct"
    (Conc.Conc_detect.check_correct (Smc.Dfs { max_schedules = 50_000 })
       Faults.F14_compaction_reclaim_race)

let test_f14_pct () =
  (* The Shuttle-style randomized strategies find the Fig. 4 race too. *)
  expect_violation "#14 pct"
    (Conc.Conc_detect.detect (Smc.Pct { seed = 3; schedules = 50_000; depth = 3 })
       Faults.F14_compaction_reclaim_race)
    is_assertion;
  expect_violation "#14 random"
    (Conc.Conc_detect.detect (Smc.Random_walk { seed = 3; schedules = 50_000 })
       Faults.F14_compaction_reclaim_race)
    is_assertion

let test_f16 () =
  expect_violation "#16"
    (Conc.Conc_detect.detect dfs Faults.F16_bulk_create_remove_race)
    is_assertion;
  expect_clean "#16 correct"
    (Conc.Conc_detect.check_correct dfs Faults.F16_bulk_create_remove_race)

let test_non_concurrency_fault_rejected () =
  match Conc.Conc_detect.detect dfs Faults.F1_reclaim_off_by_one with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* {2 Sequential sanity of the concurrent components} *)

let test_conc_index_sequential () =
  Faults.disable_all ();
  let index = Conc.Conc_index.create () in
  Conc.Conc_index.put index ~key:1 ~value:10;
  Conc.Conc_index.put index ~key:2 ~value:20;
  Alcotest.(check (option int)) "memtable get" (Some 10) (Conc.Conc_index.get index ~key:1);
  Conc.Conc_index.compact index;
  Alcotest.(check (option int)) "chunk get" (Some 10) (Conc.Conc_index.get index ~key:1);
  Alcotest.(check bool) "chunk on open extent" true (Conc.Conc_index.chunks_on index ~extent:0 > 0);
  Conc.Conc_index.reclaim index ~extent:0;
  Alcotest.(check int) "extent reset" 0 (Conc.Conc_index.chunks_on index ~extent:0);
  Alcotest.(check (option int)) "evacuated get" (Some 10) (Conc.Conc_index.get index ~key:1);
  Conc.Conc_index.put index ~key:1 ~value:11;
  Alcotest.(check (option int)) "overwrite" (Some 11) (Conc.Conc_index.get index ~key:1);
  Alcotest.(check (option int)) "missing" None (Conc.Conc_index.get index ~key:9)

let test_shard_map_sequential () =
  Faults.disable_all ();
  let map = Conc.Shard_map.create () in
  Conc.Shard_map.bulk_create map [ 1; 2; 3 ];
  Alcotest.(check bool) "mem" true (Conc.Shard_map.mem map 2);
  Conc.Shard_map.bulk_remove map [ 2 ];
  Alcotest.(check bool) "removed" false (Conc.Shard_map.mem map 2);
  Alcotest.(check int) "list" 2 (List.length (Conc.Shard_map.list map))

let test_conc_chunks_sequential () =
  Faults.disable_all ();
  let store = Conc.Conc_chunks.create () in
  Conc.Conc_chunks.put store ~payload:5;
  (match Conc.Conc_chunks.published store with
  | [ locator ] ->
    Alcotest.(check (option int)) "read" (Some 5) (Conc.Conc_chunks.read store ~locator)
  | _ -> Alcotest.fail "expected one locator");
  Alcotest.(check (option int)) "bad locator" None (Conc.Conc_chunks.read store ~locator:99)

(* {2 Linearizability of the concurrent index} *)

type op = Put of int * int | Get of int

let index_apply state = function
  | Put (k, v) -> ((k, v) :: List.remove_assoc k state, None)
  | Get k -> (state, List.assoc_opt k state)

let test_conc_index_linearizable () =
  Faults.disable_all ();
  let body () =
    let index = Conc.Conc_index.create () in
    Conc.Conc_index.put index ~key:1 ~value:10;
    Conc.Conc_index.compact index;
    let rec_ = Linearize.Recorder.create () in
    let done_ = Smc.Cell.make 0 in
    Smc.spawn (fun () ->
        Conc.Conc_index.reclaim index ~extent:0;
        ignore (Smc.Cell.update done_ (fun d -> d + 1)));
    Smc.spawn (fun () ->
        ignore
          (Linearize.Recorder.record rec_ (Put (1, 11)) (fun () ->
               Conc.Conc_index.put index ~key:1 ~value:11;
               None));
        ignore
          (Linearize.Recorder.record rec_ (Get 1) (fun () -> Conc.Conc_index.get index ~key:1));
        ignore (Smc.Cell.update done_ (fun d -> d + 1)));
    Smc.spawn (fun () ->
        ignore
          (Linearize.Recorder.record rec_ (Get 1) (fun () -> Conc.Conc_index.get index ~key:1));
        ignore (Smc.Cell.update done_ (fun d -> d + 1)));
    Smc.wait_until (fun () -> Smc.Cell.peek done_ = 3);
    if
      not
        (Linearize.check ~init:[ (1, 10) ] ~apply:index_apply ~equal_res:( = )
           (Linearize.Recorder.history rec_))
    then failwith "index history not linearizable"
  in
  expect_clean "linearizable under reclamation"
    (Smc.explore (Smc.Random_walk { seed = 11; schedules = 5_000 }) body)

(* {2 The validated reader-writer lock} *)

let test_rwlock_spec () =
  let open Conc.Rwlock.Spec in
  Alcotest.(check bool) "initial ok" true (invariant initial);
  (match step initial Reader_enter with
  | Some s -> Alcotest.(check int) "one reader" 1 s.readers
  | None -> Alcotest.fail "reader blocked on a free lock");
  (* writer preference: a pending writer blocks reader admission *)
  (match step initial Writer_declare with
  | None -> Alcotest.fail "declare blocked"
  | Some pending -> (
    Alcotest.(check (option reject)) "reader blocked while pending" None
      (step pending Reader_enter);
    match step pending Writer_enter with
    | None -> Alcotest.fail "writer blocked with no readers"
    | Some w ->
      Alcotest.(check bool) "writer inside" true w.writer;
      (* classify recovers the labels of both edges *)
      Alcotest.(check bool) "classify declare" true
        (classify ~old_s:initial ~new_s:pending = Some Writer_declare);
      Alcotest.(check bool) "classify enter" true
        (classify ~old_s:pending ~new_s:w = Some Writer_enter);
      Alcotest.(check (option reject)) "no self-loop label" None
        (classify ~old_s:w ~new_s:w)))

let test_rwlock_model () =
  let reports = Conc.Rwlock.Check.model () in
  Alcotest.(check bool) "all harnesses" true (List.length reports >= 5);
  List.iter (fun r -> expect_clean r.Conc.Rwlock.Check.name r.Conc.Rwlock.Check.outcome) reports;
  Alcotest.(check bool) "model_ok" true (Conc.Rwlock.Check.model_ok reports)

let test_rwlock_impl () =
  let r = Conc.Rwlock.Check.impl ~domains:4 ~ops_per_domain:4 ~seed:5 () in
  Alcotest.(check bool) "transitions taken" true (r.Conc.Rwlock.Check.transitions > 0);
  Alcotest.(check int) "no illegal edges" 0 (List.length r.Conc.Rwlock.Check.trace_violations);
  Alcotest.(check bool) "linearizable" true r.Conc.Rwlock.Check.linearizable;
  Alcotest.(check bool) "impl_ok" true (Conc.Rwlock.Check.impl_ok r)

let test_rwlock_sequential () =
  let l = Conc.Rwlock.create () in
  Alcotest.(check int) "free" 0 (Conc.Rwlock.state l).Conc.Rwlock.Spec.readers;
  Conc.Rwlock.with_read l (fun () ->
      Alcotest.(check int) "reader counted" 1 (Conc.Rwlock.state l).Conc.Rwlock.Spec.readers);
  let v =
    Conc.Rwlock.with_write l (fun () ->
        Alcotest.(check bool) "writer flagged" true
          (Conc.Rwlock.state l).Conc.Rwlock.Spec.writer;
        42)
  in
  Alcotest.(check int) "result threaded" 42 v;
  Alcotest.(check bool) "released" false (Conc.Rwlock.state l).Conc.Rwlock.Spec.writer

(* {2 Sharded table and cache lifecycle} *)

let test_shard_table () =
  let t = Conc.Shard_table.create ~shards:4 () in
  Alcotest.(check int) "shards" 4 (Conc.Shard_table.shards t);
  let keys = List.init 32 (Printf.sprintf "key-%d") in
  List.iter
    (fun k ->
      Alcotest.(check bool) "shard in range" true
        (let s = Conc.Shard_table.shard_of t k in
         s >= 0 && s < 4);
      Conc.Shard_table.with_key_write t k (fun tbl -> Hashtbl.replace tbl k (String.length k)))
    keys;
  Alcotest.(check int) "size" 32 (Conc.Shard_table.size t);
  List.iter
    (fun k ->
      Alcotest.(check (option int))
        "read back" (Some (String.length k))
        (Conc.Shard_table.with_key_read t k (fun tbl -> Hashtbl.find_opt tbl k)))
    keys;
  Conc.Shard_table.with_all_write t (fun tables -> Array.iter Hashtbl.reset tables);
  Alcotest.(check int) "cleared" 0 (Conc.Shard_table.size t);
  match Conc.Shard_table.create ~shards:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shards:0 accepted"

let test_cache_sm () =
  let open Conc.Cache_sm in
  Alcotest.(check bool) "miss claims" true (legal Empty Reading);
  Alcotest.(check bool) "fill completes" true (legal Reading Clean);
  Alcotest.(check bool) "flush window" true (legal Dirty Writeback && legal Writeback Clean);
  Alcotest.(check bool) "no self-loop" false (legal Clean Clean);
  Alcotest.(check bool) "no skip to writeback" false (legal Clean Writeback);
  let a = auditor () in
  record a ~page:1 ~old_s:Empty ~new_s:Reading;
  record a ~page:1 ~old_s:Reading ~new_s:Clean;
  Alcotest.(check int) "checked" 2 (checked a);
  Alcotest.(check int) "clean so far" 0 (List.length (violations a));
  record a ~page:2 ~old_s:Empty ~new_s:Writeback;
  match violations a with
  | [ v ] ->
    Alcotest.(check int) "violating page" 2 v.page;
    Alcotest.(check int) "still counted" 3 (checked a)
  | l -> Alcotest.failf "expected one violation, got %d" (List.length l)

let test_conc_shared_model () =
  let reports = Conc.Conc_shared.run ~budget:4_000 () in
  Alcotest.(check int) "six harnesses" 6 (List.length reports);
  List.iter
    (fun name ->
      Alcotest.(check bool)
        ("harness present: " ^ name)
        true
        (List.exists (fun r -> r.Conc.Conc_shared.name = name) reports))
    [ "shared/maint"; "shared/maint-order" ];
  List.iter (fun r -> expect_clean r.Conc.Conc_shared.name r.Conc.Conc_shared.outcome) reports;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Conc.Conc_shared.name ^ " race-checked")
        true
        (r.Conc.Conc_shared.outcome.Smc.sanitize_accesses > 0))
    reports;
  Alcotest.(check bool) "ok" true (Conc.Conc_shared.ok reports)

(* Worker: the stop flag is checked between steps and the join publishes
   everything the worker wrote. *)
let test_domains_worker () =
  let steps = Atomic.make 0 in
  let w = Conc.Domains.Worker.start (fun n -> Atomic.set steps (n + 1)) in
  (* let it spin at least once *)
  let rec wait k = if Atomic.get steps = 0 && k > 0 then (Domain.cpu_relax (); wait (k - 1)) in
  wait 20_000_000;
  let completed = Conc.Domains.Worker.stop w in
  (* join publishes the worker's writes: the shared counter agrees with
     the step count the worker returned *)
  Alcotest.(check int) "published step count" completed (Atomic.get steps);
  Alcotest.(check bool) "worker stepped" true (completed > 0)

let () =
  Faults.disable_all ();
  Faults.reset_counters ();
  Alcotest.run "conc"
    [
      ( "detection",
        [
          Alcotest.test_case "#11 locator race" `Quick test_f11;
          Alcotest.test_case "#12 buffer pool deadlock" `Quick test_f12;
          Alcotest.test_case "#13 list/remove race" `Quick test_f13;
          Alcotest.test_case "#14 compaction/reclamation race" `Quick test_f14;
          Alcotest.test_case "#14 via randomized strategies" `Quick test_f14_pct;
          Alcotest.test_case "#16 bulk race" `Quick test_f16;
          Alcotest.test_case "non-concurrency fault rejected" `Quick
            test_non_concurrency_fault_rejected;
        ] );
      ( "components",
        [
          Alcotest.test_case "index sequential" `Quick test_conc_index_sequential;
          Alcotest.test_case "shard map sequential" `Quick test_shard_map_sequential;
          Alcotest.test_case "chunk store sequential" `Quick test_conc_chunks_sequential;
        ] );
      ( "linearizability",
        [ Alcotest.test_case "index linearizable" `Quick test_conc_index_linearizable ] );
      ( "rwlock",
        [
          Alcotest.test_case "spec steps and classify" `Quick test_rwlock_spec;
          Alcotest.test_case "sequential smoke" `Quick test_rwlock_sequential;
          Alcotest.test_case "model suite exhaustive" `Slow test_rwlock_model;
          Alcotest.test_case "impl on real domains" `Quick test_rwlock_impl;
        ] );
      ( "shared",
        [
          Alcotest.test_case "shard table" `Quick test_shard_table;
          Alcotest.test_case "cache lifecycle auditor" `Quick test_cache_sm;
          Alcotest.test_case "shared-store model clean" `Slow test_conc_shared_model;
          Alcotest.test_case "maintenance worker lifecycle" `Quick test_domains_worker;
        ] );
    ]
