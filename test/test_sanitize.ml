(* Tests for the sanitizer suite: the vector-clock race detector and its
   lockset fallback, lock-order analysis, and the page-lifecycle shadow —
   plus the acceptance harnesses: a silent write/write race caught without
   manifesting, and a read of a recycled extent reported at the faulting
   read. *)

open Util

let vc_only = { Sanitize.races = `Vector_clock; lock_order = false }
let lockset_only = { Sanitize.races = `Lockset; lock_order = false }
let order_only = { Sanitize.races = `Off; lock_order = true }

(* {2 Vector-clock race detection} *)

(* Two threads store the same value into an unsynchronized cell: every
   interleaving produces the same final state, so no assertion can catch
   it — the race never manifests. The detector must flag it anyway. *)
let silent_ww_race () =
  let c = Smc.Cell.make 0 in
  let done_ = Smc.Cell.make 0 in
  let body () =
    Smc.Cell.set c 1;
    ignore (Smc.Cell.update done_ (fun d -> d + 1))
  in
  Smc.spawn body;
  Smc.spawn body;
  Smc.wait_until (fun () -> Smc.Cell.peek done_ = 2);
  if Smc.Cell.get c <> 1 then failwith "impossible: both orders store 1"

let test_silent_ww_race_caught () =
  (* Without the sanitizer the body is violation-free by construction. *)
  let plain = Smc.explore (Smc.Dfs { max_schedules = 10_000 }) silent_ww_race in
  Alcotest.(check bool) "no manifest violation" true (plain.Smc.violation = None);
  Alcotest.(check bool) "exhaustive" true plain.Smc.exhausted;
  (* With it, the write/write pair is flagged — on the very first schedule,
     since no interleaving orders the two stores. *)
  let o = Smc.explore ~sanitize:vc_only (Smc.Dfs { max_schedules = 10_000 }) silent_ww_race in
  match o.Smc.violation with
  | Some { kind = Smc.Race { access = "write/write"; tids; loc }; schedule; _ } ->
    Alcotest.(check int) "first schedule" 1 o.Smc.schedules_run;
    Alcotest.(check bool) "distinct threads" true (fst tids <> snd tids);
    (* The recorded schedule replays to the same race at the same cell. *)
    (match Smc.replay ~sanitize:vc_only silent_ww_race schedule with
    | Some { kind = Smc.Race r; _ } ->
      Alcotest.(check int) "same location on replay" loc r.loc
    | other ->
      Alcotest.failf "replay did not reproduce the race: %a"
        Fmt.(option Smc.pp_violation)
        other);
    (* Replaying the same schedule without the sanitizer runs clean: the
       race truly does not manifest. *)
    Alcotest.(check bool) "silent without sanitizer" true
      (Smc.replay silent_ww_race schedule = None)
  | _ -> Alcotest.failf "expected write/write race, got %a" Smc.pp_outcome o

let test_race_replay_across_strategies () =
  List.iter
    (fun (name, strategy) ->
      let o = Smc.explore ~sanitize:vc_only strategy silent_ww_race in
      match o.Smc.violation with
      | Some ({ kind = Smc.Race _; _ } as v) -> (
        match Smc.replay ~sanitize:vc_only silent_ww_race v.Smc.schedule with
        | Some v' -> Alcotest.(check bool) (name ^ ": same kind") true (v'.Smc.kind = v.Smc.kind)
        | None -> Alcotest.failf "%s: replay did not reproduce" name)
      | _ -> Alcotest.failf "%s: expected race, got %a" name Smc.pp_outcome o)
    [
      ("dfs", Smc.Dfs { max_schedules = 10_000 });
      ("random", Smc.Random_walk { seed = 11; schedules = 1_000 });
      ("pct", Smc.Pct { seed = 11; schedules = 1_000; depth = 3 });
    ]

let test_unsynchronized_rw_flagged () =
  (* The classic lost-update body: get/set with no synchronization. The
     detector reports the read/write pair without needing the assertion. *)
  let body () =
    let c = Smc.Cell.make 0 in
    let done_ = Smc.Cell.make 0 in
    let incr () =
      let v = Smc.Cell.get c in
      Smc.Cell.set c (v + 1);
      ignore (Smc.Cell.update done_ (fun d -> d + 1))
    in
    Smc.spawn incr;
    Smc.spawn incr;
    Smc.wait_until (fun () -> Smc.Cell.peek done_ = 2)
  in
  let o = Smc.explore ~sanitize:vc_only (Smc.Dfs { max_schedules = 10_000 }) body in
  match o.Smc.violation with
  | Some { kind = Smc.Race _; _ } -> ()
  | _ -> Alcotest.failf "expected race, got %a" Smc.pp_outcome o

let test_mutex_protected_clean () =
  let body () =
    let c = Smc.Cell.make 0 in
    let done_ = Smc.Cell.make 0 in
    let m = Smc.Mutex.create () in
    let incr () =
      Smc.Mutex.with_lock m (fun () ->
          let v = Smc.Cell.get c in
          Smc.Cell.set c (v + 1));
      ignore (Smc.Cell.update done_ (fun d -> d + 1))
    in
    Smc.spawn incr;
    Smc.spawn incr;
    Smc.wait_until (fun () -> Smc.Cell.peek done_ = 2);
    if Smc.Cell.get c <> 2 then failwith "lost update"
  in
  let o = Smc.explore ~sanitize:Sanitize.default (Smc.Dfs { max_schedules = 100_000 }) body in
  Alcotest.(check bool) "no violation" true (o.Smc.violation = None);
  Alcotest.(check bool) "no cycles" true (o.Smc.lock_cycles = []);
  Alcotest.(check bool) "exhaustive" true o.Smc.exhausted

(* Publication pattern: data is written plain, then published through an
   atomic RMW flag; the reader consumes the flag with an RMW before
   touching data. Happens-before orders the accesses — VC mode is quiet. *)
let publication_body () =
  let data = Smc.Cell.make 0 in
  let flag = Smc.Cell.make false in
  Smc.spawn (fun () ->
      Smc.Cell.set data 42;
      ignore (Smc.Cell.update flag (fun _ -> true)));
  Smc.spawn (fun () ->
      if Smc.Cell.update flag Fun.id then
        if Smc.Cell.get data <> 42 then failwith "published data missing");
  Smc.yield ()

let test_publication_clean_under_vc () =
  let o = Smc.explore ~sanitize:vc_only (Smc.Dfs { max_schedules = 100_000 }) publication_body in
  Alcotest.(check bool) "no violation" true (o.Smc.violation = None);
  Alcotest.(check bool) "exhaustive" true o.Smc.exhausted

let test_publication_lockset_false_positive () =
  (* The documented lockset limitation: no common lock protects [data], so
     Eraser-style screening flags the publication pattern even though
     happens-before proves it race-free. *)
  let o =
    Smc.explore ~sanitize:lockset_only (Smc.Dfs { max_schedules = 100_000 }) publication_body
  in
  match o.Smc.violation with
  | Some { kind = Smc.Race { access = "lockset"; _ }; _ } -> ()
  | _ -> Alcotest.failf "expected lockset report, got %a" Smc.pp_outcome o

let test_lockset_flags_ww_race () =
  let o = Smc.explore ~sanitize:lockset_only (Smc.Dfs { max_schedules = 10_000 }) silent_ww_race in
  match o.Smc.violation with
  | Some { kind = Smc.Race { access = "lockset"; _ }; _ } -> ()
  | _ -> Alcotest.failf "expected lockset report, got %a" Smc.pp_outcome o

let test_f11_flagged_without_manifesting () =
  (* Fault #11 publishes the locator before the slot write. On the serial
     first schedule the reader still finds the data — the assertion passes —
     but the slot write is not ordered before the reader's slot read, so the
     detector reports the race immediately. *)
  let o =
    Conc.Conc_detect.detect ~sanitize:vc_only
      (Smc.Dfs { max_schedules = 10_000 })
      Faults.F11_locator_race
  in
  match o.Smc.violation with
  | Some { kind = Smc.Race _; _ } ->
    Alcotest.(check int) "caught on the first schedule" 1 o.Smc.schedules_run
  | _ -> Alcotest.failf "expected race, got %a" Smc.pp_outcome o

(* {2 Lock-order analysis} *)

let lock_inversion_body () =
  let a = Smc.Mutex.create () and b = Smc.Mutex.create () in
  Smc.spawn (fun () ->
      Smc.Mutex.lock a;
      Smc.yield ();
      Smc.Mutex.lock b;
      Smc.Mutex.unlock b;
      Smc.Mutex.unlock a);
  Smc.spawn (fun () ->
      Smc.Mutex.lock b;
      Smc.yield ();
      Smc.Mutex.lock a;
      Smc.Mutex.unlock a;
      Smc.Mutex.unlock b)

let test_lock_cycle_without_deadlock () =
  (* One serial schedule: no interleaving, so no deadlock can manifest —
     but both acquisition orders are recorded and the a<->b cycle is
     reported anyway. *)
  let o =
    Smc.explore ~sanitize:order_only (Smc.Dfs { max_schedules = 1 }) lock_inversion_body
  in
  Alcotest.(check bool) "no manifest deadlock" true (o.Smc.violation = None);
  Alcotest.(check (list (list int))) "cycle over locks 0 and 1" [ [ 0; 1 ] ] o.Smc.lock_cycles

let test_ordered_locks_no_cycle () =
  let body () =
    let a = Smc.Mutex.create () and b = Smc.Mutex.create () in
    let worker () =
      Smc.Mutex.lock a;
      Smc.Mutex.lock b;
      Smc.Mutex.unlock b;
      Smc.Mutex.unlock a
    in
    Smc.spawn worker;
    Smc.spawn worker
  in
  let o = Smc.explore ~sanitize:Sanitize.default (Smc.Dfs { max_schedules = 100_000 }) body in
  Alcotest.(check bool) "no violation" true (o.Smc.violation = None);
  Alcotest.(check bool) "exhaustive" true o.Smc.exhausted;
  Alcotest.(check (list (list int))) "no cycles" [] o.Smc.lock_cycles

(* {2 Page-lifecycle shadow} *)

let disk_config = { Disk.extent_count = 4; pages_per_extent = 4; page_size = 8 }

let make_shadowed_disk ?obs () =
  let shadow =
    Sanitize.Page_shadow.create ?obs ~extent_count:disk_config.Disk.extent_count
      ~pages_per_extent:disk_config.Disk.pages_per_extent
      ~page_size:disk_config.Disk.page_size ()
  in
  (Disk.create ~shadow disk_config, shadow)

let dok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "disk error: %a" Disk.pp_io_error e

let test_stale_epoch_read_on_recycled_extent () =
  (* The acceptance harness: a reader holds epoch 0 of an extent that is
     reset and rewritten (recycled) behind its back. The recycled read
     succeeds at the disk level — same offset, valid data — so only the
     shadow can catch it, at the faulting read itself. *)
  let obs = Obs.create ~scope:"test" ~trace_capacity:64 () in
  let disk, shadow = make_shadowed_disk ~obs () in
  dok (Disk.write disk ~extent:2 ~off:0 "AAAAAAAA");
  let reader_epoch = Disk.epoch disk ~extent:2 in
  Alcotest.(check string) "fresh read ok" "AAAAAAAA"
    (dok (Disk.read ~expect_epoch:reader_epoch disk ~extent:2 ~off:0 ~len:8));
  Alcotest.(check int) "no report yet" 0 (Sanitize.Page_shadow.report_count shadow);
  (* Recycle: reset + rewrite by someone else. *)
  dok (Disk.reset disk ~extent:2);
  dok (Disk.write disk ~extent:2 ~off:0 "BBBBBBBB");
  (* The stale reader comes back. The disk happily returns the new bytes —
     without the shadow this is silent corruption. *)
  Alcotest.(check string) "disk serves recycled bytes" "BBBBBBBB"
    (dok (Disk.read ~expect_epoch:reader_epoch disk ~extent:2 ~off:0 ~len:8));
  (match Sanitize.Page_shadow.reports shadow with
  | [ { kind = Sanitize.Page_shadow.Stale_epoch_read { expected; found }; extent; page } ] ->
    Alcotest.(check int) "expected epoch" reader_epoch expected;
    Alcotest.(check int) "found epoch" (Disk.epoch disk ~extent:2) found;
    Alcotest.(check int) "extent" 2 extent;
    Alcotest.(check int) "page" 0 page
  | rs ->
    Alcotest.failf "expected exactly one stale-epoch report, got %a"
      Fmt.(list Sanitize.Page_shadow.pp_report)
      rs);
  Alcotest.(check int) "counter bumped" 1 (Obs.counter_value obs "sanitize.page.stale_epoch_read");
  (* The trace ring holds the replayable event sequence: write/reset/write
     and the report at the faulting read. *)
  let events = List.map (fun e -> e.Obs.event) (Obs.recent obs) in
  Alcotest.(check bool) "report traced" true (List.mem "page_report" events);
  Alcotest.(check bool) "resets traced" true (List.mem "page_reset" events)

let test_quarantined_read_reported_at_faulting_read () =
  let disk, shadow = make_shadowed_disk () in
  dok (Disk.write disk ~extent:1 ~off:0 "XXXXXXXX");
  dok (Disk.reset disk ~extent:1);
  (* The disk rejects the read (beyond the rewound pointer) — the shadow
     still reports it, at the attempt. *)
  (match Disk.read disk ~extent:1 ~off:0 ~len:8 with
  | Error (Disk.Out_of_bounds _) -> ()
  | _ -> Alcotest.fail "read past rewound pointer must be rejected");
  match Sanitize.Page_shadow.reports shadow with
  | [ { kind = Sanitize.Page_shadow.Quarantined_read; extent = 1; page = 0 } ] -> ()
  | rs ->
    Alcotest.failf "expected a quarantined-read report, got %a"
      Fmt.(list Sanitize.Page_shadow.pp_report)
      rs

let test_unwritten_read_reported () =
  let disk, shadow = make_shadowed_disk () in
  (match Disk.read disk ~extent:0 ~off:0 ~len:8 with
  | Error (Disk.Out_of_bounds _) -> ()
  | _ -> Alcotest.fail "read of fresh extent must be rejected");
  match Sanitize.Page_shadow.reports shadow with
  | [ { kind = Sanitize.Page_shadow.Unwritten_read; _ } ] -> ()
  | rs ->
    Alcotest.failf "expected an unwritten-read report, got %a"
      Fmt.(list Sanitize.Page_shadow.pp_report)
      rs

let test_double_reset_reported () =
  let disk, shadow = make_shadowed_disk () in
  dok (Disk.write disk ~extent:3 ~off:0 "YYYYYYYY");
  dok (Disk.reset disk ~extent:3);
  dok (Disk.reset disk ~extent:3);
  match Sanitize.Page_shadow.reports shadow with
  | [ { kind = Sanitize.Page_shadow.Double_reset; extent = 3; _ } ] -> ()
  | rs ->
    Alcotest.failf "expected a double-reset report, got %a"
      Fmt.(list Sanitize.Page_shadow.pp_report)
      rs

let test_write_regression_reported () =
  (* The disk itself enforces sequential writes, so a regression can only
     come from a buggy layer replaying history — exercised on the shadow
     directly. *)
  let shadow =
    Sanitize.Page_shadow.create ~extent_count:2 ~pages_per_extent:4 ~page_size:8 ()
  in
  Sanitize.Page_shadow.on_write shadow ~extent:0 ~off:0 ~len:16;
  Sanitize.Page_shadow.on_write shadow ~extent:0 ~off:8 ~len:8;
  match Sanitize.Page_shadow.reports shadow with
  | [ { kind = Sanitize.Page_shadow.Write_regression { off = 8; expected = 16 }; _ } ] -> ()
  | rs ->
    Alcotest.failf "expected a write-regression report, got %a"
      Fmt.(list Sanitize.Page_shadow.pp_report)
      rs

(* {2 Leaked extents through the chunk store} *)

let chunk_config = { Disk.extent_count = 8; pages_per_extent = 8; page_size = 32 }

let make_stack () =
  let shadow =
    Sanitize.Page_shadow.create ~extent_count:chunk_config.Disk.extent_count
      ~pages_per_extent:chunk_config.Disk.pages_per_extent
      ~page_size:chunk_config.Disk.page_size ()
  in
  let disk = Disk.create ~shadow chunk_config in
  let sched = Io_sched.create ~seed:8L disk in
  let cache = Cache.create sched in
  let sb = Superblock.create sched ~extents:(0, 1) ~reserved:[ 0; 1 ] in
  let rng = Rng.create 99L in
  let cs = Chunk.Chunk_store.create sched ~cache ~superblock:sb ~rng in
  (shadow, sched, sb, cs)

let cok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "chunk store error: %a" Chunk.Chunk_store.pp_error e

let test_leaked_extent_reported_at_close () =
  let shadow, sched, sb, cs = make_stack () in
  let loc, _ = cok (Chunk.Chunk_store.put cs ~owner:(Chunk.Chunk_format.Shard "a") ~payload:"orphan") in
  (match Superblock.flush sb with Ok _ -> () | Error _ -> Alcotest.fail "sb flush");
  (match Io_sched.flush sched with Ok () -> () | Error _ -> Alcotest.fail "flush");
  (* Drop every reference and close: the written extent is unreachable and
     was never reset — a leak. *)
  Chunk.Chunk_store.close_open_extent cs;
  (match Chunk.Chunk_store.close cs ~in_use:(fun _ -> false) with
  | [ (extent, pages) ] ->
    Alcotest.(check int) "leaked the written extent" loc.Chunk.Locator.extent extent;
    Alcotest.(check bool) "pages counted" true (pages > 0)
  | ls -> Alcotest.failf "expected one leak, got %d" (List.length ls));
  Alcotest.(check bool) "shadow recorded the leak" true
    (List.exists
       (fun r ->
         match r.Sanitize.Page_shadow.kind with
         | Sanitize.Page_shadow.Extent_leak _ -> true
         | _ -> false)
       (Sanitize.Page_shadow.reports shadow));
  Alcotest.(check int) "counter bumped" 1
    (Obs.counter_value (Chunk.Chunk_store.obs cs) "chunk.leaked_extent")

let test_clean_workload_shadow_quiet () =
  let shadow, sched, sb, cs = make_stack () in
  let locs = ref [] in
  for i = 0 to 5 do
    let loc, _ =
      cok
        (Chunk.Chunk_store.put cs
           ~owner:(Chunk.Chunk_format.Shard (Printf.sprintf "k%d" i))
           ~payload:(Printf.sprintf "v%d" i))
    in
    locs := loc :: !locs
  done;
  (match Superblock.flush sb with Ok _ -> () | Error _ -> Alcotest.fail "sb flush");
  (match Io_sched.flush sched with Ok () -> () | Error _ -> Alcotest.fail "flush");
  List.iter (fun loc -> ignore (cok (Chunk.Chunk_store.get cs loc))) !locs;
  let in_use extent = List.exists (fun l -> l.Chunk.Locator.extent = extent) !locs in
  Alcotest.(check (list (pair int int))) "no leaks" [] (Chunk.Chunk_store.close cs ~in_use);
  Alcotest.(check int) "shadow quiet" 0 (Sanitize.Page_shadow.report_count shadow)

let () =
  Alcotest.run "sanitize"
    [
      ( "races",
        [
          Alcotest.test_case "silent ww race caught without manifesting" `Quick
            test_silent_ww_race_caught;
          Alcotest.test_case "race replay across strategies" `Quick
            test_race_replay_across_strategies;
          Alcotest.test_case "unsynchronized get/set flagged" `Quick test_unsynchronized_rw_flagged;
          Alcotest.test_case "mutex-protected counter clean" `Quick test_mutex_protected_clean;
          Alcotest.test_case "publication clean under vc" `Quick test_publication_clean_under_vc;
          Alcotest.test_case "publication: lockset false positive" `Quick
            test_publication_lockset_false_positive;
          Alcotest.test_case "lockset flags ww race" `Quick test_lockset_flags_ww_race;
          Alcotest.test_case "#11 flagged without manifesting" `Quick
            test_f11_flagged_without_manifesting;
        ] );
      ( "lock order",
        [
          Alcotest.test_case "cycle found without deadlock" `Quick test_lock_cycle_without_deadlock;
          Alcotest.test_case "ordered locks, no cycle" `Quick test_ordered_locks_no_cycle;
        ] );
      ( "page shadow",
        [
          Alcotest.test_case "stale-epoch read on recycled extent" `Quick
            test_stale_epoch_read_on_recycled_extent;
          Alcotest.test_case "quarantined read at faulting read" `Quick
            test_quarantined_read_reported_at_faulting_read;
          Alcotest.test_case "unwritten read" `Quick test_unwritten_read_reported;
          Alcotest.test_case "double reset" `Quick test_double_reset_reported;
          Alcotest.test_case "write regression" `Quick test_write_regression_reported;
        ] );
      ( "leaks",
        [
          Alcotest.test_case "leaked extent reported at close" `Quick
            test_leaked_extent_reported_at_close;
          Alcotest.test_case "clean workload quiet" `Quick test_clean_workload_shadow_quiet;
        ] );
    ]
