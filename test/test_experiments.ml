(* Smoke tests for the experiment drivers: each runs end-to-end at a tiny
   budget and produces structurally sensible reports. *)

let test_fig6 () =
  let r = Experiments.Fig6.run () in
  Alcotest.(check bool) "has rows" true (List.length r.Experiments.Fig6.rows >= 5);
  Alcotest.(check bool) "counted implementation" true (r.Experiments.Fig6.implementation > 1000);
  Alcotest.(check bool) "counted models" true (r.Experiments.Fig6.models > 100);
  Alcotest.(check bool) "counted validation" true (r.Experiments.Fig6.validation > 500);
  Alcotest.(check bool) "total adds up" true
    (r.Experiments.Fig6.total
    >= r.Experiments.Fig6.implementation + r.Experiments.Fig6.models
       + r.Experiments.Fig6.validation)

let test_fig5_single_rows () =
  (* Exercise one row of each method kind at a small budget. *)
  let budget =
    {
      Experiments.Fig5.quick_budget with
      Experiments.Fig5.pbt_sequences = 300;
      smc_schedules = 20_000;
    }
  in
  ignore budget;
  let r = Lfm.Detect.detect ~max_sequences:300 ~minimize:false ~seed:5 Faults.F4_disk_return_loses_shards in
  Alcotest.(check bool) "pbt row detects" true r.Lfm.Detect.found;
  let o = Conc.Conc_detect.detect (Smc.Dfs { max_schedules = 20_000 }) Faults.F12_buffer_pool_deadlock in
  Alcotest.(check bool) "smc row detects" true (o.Smc.violation <> None)

let test_payg () =
  let r =
    Experiments.Payg.run ~faults:[ Faults.F1_reclaim_off_by_one ] ~trials:3 ~max_sequences:200
      ~budgets:[ 10; 200 ] ()
  in
  match r.Experiments.Payg.curves with
  | [ c ] ->
    Alcotest.(check int) "trials" 3 c.Experiments.Payg.trials;
    Alcotest.(check bool) "monotone probabilities" true
      (match c.Experiments.Payg.probability with
      | [ p1; p2 ] -> p1 <= p2
      | _ -> false)
  | _ -> Alcotest.fail "expected one curve"

let test_crash_modes () =
  let r =
    Experiments.Crash_modes.run
      ~faults:[ Faults.F3_shutdown_skips_metadata ]
      ~max_sequences:300 ~throughput_sequences:30 ()
  in
  Alcotest.(check int) "three modes" 3 (List.length r.Experiments.Crash_modes.detections);
  List.iter
    (fun d -> Alcotest.(check bool) "detected in every mode" true d.Experiments.Crash_modes.detected)
    r.Experiments.Crash_modes.detections;
  Alcotest.(check bool) "throughput measured" true
    (List.for_all (fun (_, t) -> t > 0.0) r.Experiments.Crash_modes.throughput);
  Alcotest.(check bool) "exhaustive states counted" true
    (r.Experiments.Crash_modes.exhaustive_states > 0)

let test_smc_tradeoff () =
  let r = Experiments.Smc_tradeoff.run ~trials:1 ~schedule_budget:30_000 () in
  Alcotest.(check bool) "has results" true (List.length r.Experiments.Smc_tradeoff.results >= 3);
  List.iter
    (fun (v : Experiments.Smc_tradeoff.verification) ->
      Alcotest.(check bool) "verification ran" true (v.Experiments.Smc_tradeoff.schedules > 0))
    r.Experiments.Smc_tradeoff.verifications

let test_blindspot () =
  let r = Experiments.Blindspot.run ~max_sequences:150 () in
  match r.Experiments.Blindspot.arms with
  | [ oversized; right_sized ] ->
    Alcotest.(check bool) "oversized cache hides the bug" false
      oversized.Experiments.Blindspot.detected;
    Alcotest.(check bool) "coverage flags the blind spot" true
      (List.mem "cache.miss" oversized.Experiments.Blindspot.blind_spots);
    Alcotest.(check bool) "right-sized cache finds it" true
      right_sized.Experiments.Blindspot.detected;
    Alcotest.(check bool) "misses reached" true
      (right_sized.Experiments.Blindspot.cache_misses > 0)
  | _ -> Alcotest.fail "expected two arms"

let test_minimize_stats () =
  let r =
    Experiments.Minimize_stats.run
      ~faults:[ Faults.F4_disk_return_loses_shards ]
      ~samples_per_fault:1 ()
  in
  match r.Experiments.Minimize_stats.samples with
  | [ s ] ->
    Alcotest.(check bool) "reduced" true
      (s.Experiments.Minimize_stats.minimized.Lfm.Op.ops
      <= s.Experiments.Minimize_stats.original.Lfm.Op.ops)
  | _ -> Alcotest.fail "expected one sample"

let test_component_level () =
  let r = Experiments.Component_level.run ~trials:2 ~max_sequences:1_000 () in
  Alcotest.(check int) "four rows" 4 (List.length r.Experiments.Component_level.rows);
  List.iter
    (fun (row : Experiments.Component_level.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "#%d %s detects" (Faults.number row.Experiments.Component_level.fault)
           row.Experiments.Component_level.level)
        true
        (row.Experiments.Component_level.detected = row.Experiments.Component_level.trials))
    r.Experiments.Component_level.rows

let test_repair_traffic () =
  let r = Experiments.Repair_traffic.run ~shards:20 ~shard_bytes:1024 () in
  Alcotest.(check int) "crash needs no repair" 0
    r.Experiments.Repair_traffic.crash.Experiments.Repair_traffic.bytes_moved;
  Alcotest.(check bool) "loss re-replicates" true
    (r.Experiments.Repair_traffic.loss.Experiments.Repair_traffic.bytes_moved > 0)

let () =
  Faults.disable_all ();
  Alcotest.run "experiments"
    [
      ( "smoke",
        [
          Alcotest.test_case "fig6 loc" `Quick test_fig6;
          Alcotest.test_case "fig5 rows" `Quick test_fig5_single_rows;
          Alcotest.test_case "payg" `Quick test_payg;
          Alcotest.test_case "crash modes" `Quick test_crash_modes;
          Alcotest.test_case "smc tradeoff" `Quick test_smc_tradeoff;
          Alcotest.test_case "minimize stats" `Quick test_minimize_stats;
          Alcotest.test_case "blindspot" `Quick test_blindspot;
          Alcotest.test_case "component level" `Quick test_component_level;
          Alcotest.test_case "repair traffic" `Quick test_repair_traffic;
        ] );
    ]
