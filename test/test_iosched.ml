(* Tests for the IO scheduler: volatile staging, dependency-ordered
   writeback, promises, and crash-state generation. *)

open Util

let small = { Disk.extent_count = 4; pages_per_extent = 4; page_size = 16 }

let make () =
  let disk = Disk.create small in
  (disk, Io_sched.create ~seed:1L disk)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected scheduler error: %a" Io_sched.pp_error e

let test_volatile_read_sees_pending () =
  let disk, s = make () in
  let dep = ok (Io_sched.append s ~extent:0 ~data:"hello" ~input:Dep.trivial) in
  Alcotest.(check bool) "not yet persistent" false (Dep.is_persistent dep);
  Alcotest.(check string) "volatile read" "hello"
    (ok (Io_sched.read s ~extent:0 ~off:0 ~len:5));
  Alcotest.(check int) "nothing durable" 0 (Disk.hard_ptr disk ~extent:0);
  let n = Io_sched.pump s in
  Alcotest.(check int) "one io" 1 n;
  Alcotest.(check bool) "persistent after pump" true (Dep.is_persistent dep);
  Alcotest.(check int) "durable" 5 (Disk.hard_ptr disk ~extent:0)

let test_dependency_orders_issuance () =
  let disk, s = make () in
  let d1 = ok (Io_sched.append s ~extent:0 ~data:"aa" ~input:Dep.trivial) in
  let d2 = ok (Io_sched.append s ~extent:1 ~data:"bb" ~input:d1) in
  (* d2 is on another extent but must not be issued before d1 persists. *)
  let rec pump_until_d2 guard =
    if guard = 0 then Alcotest.fail "d2 never issued";
    ignore (Io_sched.pump ~max_ios:1 s);
    if Disk.hard_ptr disk ~extent:1 > 0 then () else pump_until_d2 (guard - 1)
  in
  pump_until_d2 10;
  Alcotest.(check bool) "d1 was issued first" true (Dep.is_persistent d1);
  Alcotest.(check bool) "d2 done" true (Dep.is_persistent d2)

let test_fifo_per_extent () =
  let disk, s = make () in
  ignore (ok (Io_sched.append s ~extent:0 ~data:"aa" ~input:Dep.trivial));
  ignore (ok (Io_sched.append s ~extent:0 ~data:"bb" ~input:Dep.trivial));
  ignore (Io_sched.pump ~max_ios:1 s);
  Alcotest.(check string) "prefix issued in order" "aa" (Disk.durable_image disk ~extent:0)

let test_and_dep () =
  let _, s = make () in
  let d1 = ok (Io_sched.append s ~extent:0 ~data:"aa" ~input:Dep.trivial) in
  let d2 = ok (Io_sched.append s ~extent:1 ~data:"bb" ~input:Dep.trivial) in
  let both = Dep.and_ d1 d2 in
  Alcotest.(check bool) "not yet" false (Dep.is_persistent both);
  ok (Io_sched.flush s);
  Alcotest.(check bool) "both" true (Dep.is_persistent both)

let test_promise () =
  let _, s = make () in
  let p = Dep.Promise.create () in
  let d = Dep.Promise.dep p in
  Alcotest.(check bool) "unbound not persistent" false (Dep.is_persistent d);
  Alcotest.(check bool) "unbound not failed" false (Dep.has_failed d);
  let w = ok (Io_sched.append s ~extent:0 ~data:"x" ~input:Dep.trivial) in
  Dep.Promise.bind p w;
  Alcotest.(check bool) "bound pending" false (Dep.is_persistent d);
  ok (Io_sched.flush s);
  Alcotest.(check bool) "bound persistent" true (Dep.is_persistent d);
  (* Double bind rejected. *)
  match Dep.Promise.bind p w with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double bind must raise"

let test_promise_cycle_terminates () =
  (* A promise accidentally bound into a dependency containing itself must
     not send the traversals into a loop. *)
  let p = Dep.Promise.create () in
  let d = Dep.and_ (Dep.Promise.dep p) (Dep.Promise.dep p) in
  Dep.Promise.bind p d;
  Alcotest.(check bool) "is_persistent terminates" true (Dep.is_persistent d || true);
  Alcotest.(check bool) "has_failed terminates" false (Dep.has_failed d);
  Alcotest.(check bool) "writes terminates" true (Dep.writes d = [])

let test_reset_epoch_volatile () =
  let _, s = make () in
  ignore (ok (Io_sched.append s ~extent:0 ~data:"old" ~input:Dep.trivial));
  let r = ok (Io_sched.reset s ~extent:0 ~input:Dep.trivial) in
  Alcotest.(check int) "volatile epoch" 1 (Io_sched.epoch s ~extent:0);
  Alcotest.(check int) "volatile pointer" 0 (Io_sched.soft_ptr s ~extent:0);
  ignore (ok (Io_sched.append s ~extent:0 ~data:"new" ~input:Dep.trivial));
  Alcotest.(check string) "new data visible" "new" (ok (Io_sched.read s ~extent:0 ~off:0 ~len:3));
  ok (Io_sched.flush s);
  Alcotest.(check bool) "reset durable" true (Dep.is_persistent r)

let test_extent_full () =
  let _, s = make () in
  let big = String.make (Io_sched.extent_size s) 'x' in
  ignore (ok (Io_sched.append s ~extent:0 ~data:big ~input:Dep.trivial));
  match Io_sched.append s ~extent:0 ~data:"y" ~input:Dep.trivial with
  | Error (Io_sched.Extent_full _) -> ()
  | _ -> Alcotest.fail "expected Extent_full"

let test_crash_drops_pending () =
  let disk, s = make () in
  let d = ok (Io_sched.append s ~extent:0 ~data:"gone" ~input:Dep.trivial) in
  let rng = Rng.create 5L in
  let report = Io_sched.crash s ~rng ~persist_probability:0.0 ~split_pages:false in
  Alcotest.(check int) "dropped" 1 report.Io_sched.dropped;
  Alcotest.(check bool) "dep failed" true (Dep.has_failed d);
  Alcotest.(check int) "nothing durable" 0 (Disk.hard_ptr disk ~extent:0);
  Alcotest.(check int) "volatile reloaded" 0 (Io_sched.soft_ptr s ~extent:0)

let test_crash_persists_all () =
  let disk, s = make () in
  let d = ok (Io_sched.append s ~extent:0 ~data:"kept" ~input:Dep.trivial) in
  let rng = Rng.create 5L in
  let report = Io_sched.crash s ~rng ~persist_probability:1.0 ~split_pages:false in
  Alcotest.(check int) "persisted" 1 report.Io_sched.persisted;
  Alcotest.(check bool) "dep persistent" true (Dep.is_persistent d);
  Alcotest.(check string) "durable" "kept" (Disk.durable_image disk ~extent:0)

(* Property: crash states respect dependencies — if a write persisted, its
   input dependency's writes persisted too (soft updates' core invariant). *)
let prop_crash_respects_deps =
  QCheck.Test.make ~name:"crash respects dependency closure" ~count:200
    QCheck.(pair small_nat (int_bound 1000))
    (fun (n_ops, seed) ->
      let n_ops = 1 + (n_ops mod 12) in
      let disk = Disk.create { Disk.extent_count = 4; pages_per_extent = 8; page_size = 16 } in
      let s = Io_sched.create ~seed:(Int64.of_int seed) disk in
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      (* Build a random chain/diamond of appends across extents. *)
      let deps = ref [ Dep.trivial ] in
      let writes = ref [] in
      for _ = 1 to n_ops do
        let extent = Rng.int rng 4 in
        let input = Rng.pick_list rng !deps in
        let data = Bytes.to_string (Rng.bytes rng (1 + Rng.int rng 24)) in
        match Io_sched.append s ~extent ~data ~input with
        | Ok d ->
          deps := d :: !deps;
          writes := (d, input) :: !writes
        | Error _ -> ()
      done;
      ignore (Io_sched.pump ~max_ios:(Rng.int rng 4) s);
      let _ =
        Io_sched.crash s ~rng ~persist_probability:0.5 ~split_pages:false
      in
      List.for_all
        (fun (d, input) -> (not (Dep.is_persistent d)) || Dep.is_persistent input)
        !writes)

let test_crash_split_pages () =
  (* Force a partial persist: a 3-page write cut at a page boundary. *)
  let found = ref false in
  let attempt seed =
    let disk = Disk.create small in
    let s = Io_sched.create ~seed:1L disk in
    let data = String.make 40 'z' in
    let d = ok (Io_sched.append s ~extent:0 ~data ~input:Dep.trivial) in
    let rng = Rng.create (Int64.of_int seed) in
    let report = Io_sched.crash s ~rng ~persist_probability:1.0 ~split_pages:true in
    if report.Io_sched.partial = 1 then begin
      found := true;
      let hp = Disk.hard_ptr disk ~extent:0 in
      Alcotest.(check bool) "cut at page boundary" true (hp mod 16 = 0 && hp > 0 && hp < 40);
      Alcotest.(check bool) "partial write not persistent" true (Dep.has_failed d)
    end
  in
  let seed = ref 0 in
  while (not !found) && !seed < 200 do
    attempt !seed;
    incr seed
  done;
  Alcotest.(check bool) "found a partial crash state" true !found

(* Property: for any random acyclic dependency graph over appends, flush
   achieves forward progress (everything persists) and the durable bytes
   equal the volatile image. *)
let prop_flush_forward_progress =
  QCheck.Test.make ~name:"flush persists arbitrary acyclic graphs" ~count:200
    QCheck.(int_bound 100_000)
    (fun seed ->
      let disk = Disk.create { Disk.extent_count = 4; pages_per_extent = 16; page_size = 16 } in
      let s = Io_sched.create ~seed:(Int64.of_int seed) disk in
      let rng = Rng.create (Int64.of_int (seed + 7)) in
      let deps = ref [ Dep.trivial ] in
      for _ = 1 to 1 + Rng.int rng 20 do
        let extent = Rng.int rng 4 in
        let input = Rng.pick_list rng !deps in
        let data = Bytes.to_string (Rng.bytes rng (1 + Rng.int rng 24)) in
        match Io_sched.append s ~extent ~data ~input with
        | Ok d -> deps := d :: !deps
        | Error (Io_sched.Extent_full _) -> ()
        | Error e -> QCheck.Test.fail_reportf "append: %a" Io_sched.pp_error e
      done;
      let images =
        List.init 4 (fun extent ->
            let len = Io_sched.soft_ptr s ~extent in
            if len = 0 then ""
            else Result.get_ok (Io_sched.read s ~extent ~off:0 ~len))
      in
      (match Io_sched.flush s with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "flush: %a" Io_sched.pp_error e);
      List.for_all Dep.is_persistent !deps
      && List.for_all2
           (fun extent image -> Disk.durable_image disk ~extent = image)
           [ 0; 1; 2; 3 ] images)

(* Property: a crash never invents bytes — durable data is always a
   page-prefix of what was staged. *)
let prop_crash_prefix_of_staged =
  QCheck.Test.make ~name:"crash durable state is a staged prefix" ~count:200
    QCheck.(int_bound 100_000)
    (fun seed ->
      let disk = Disk.create { Disk.extent_count = 2; pages_per_extent = 16; page_size = 16 } in
      let s = Io_sched.create ~seed:(Int64.of_int seed) disk in
      let rng = Rng.create (Int64.of_int (seed + 3)) in
      let staged = Array.make 2 "" in
      for extent = 0 to 1 do
        let b = Buffer.create 64 in
        for _ = 1 to 1 + Rng.int rng 5 do
          let data = Bytes.to_string (Rng.bytes rng (1 + Rng.int rng 30)) in
          match Io_sched.append s ~extent ~data ~input:Dep.trivial with
          | Ok _ -> Buffer.add_string b data
          | Error _ -> ()
        done;
        staged.(extent) <- Buffer.contents b
      done;
      ignore (Io_sched.crash s ~rng ~persist_probability:0.6 ~split_pages:true);
      List.for_all
        (fun extent ->
          let durable = Disk.durable_image disk ~extent in
          String.length durable <= String.length staged.(extent)
          && String.sub staged.(extent) 0 (String.length durable) = durable)
        [ 0; 1 ])

let test_flush_stuck_on_unbound_promise () =
  let _, s = make () in
  let p = Dep.Promise.create () in
  ignore (ok (Io_sched.append s ~extent:0 ~data:"x" ~input:(Dep.Promise.dep p)));
  match Io_sched.flush s with
  | Error (Io_sched.Stuck { blocked = 1 }) -> ()
  | Ok () -> Alcotest.fail "flush must not complete with an unbound promise"
  | Error e -> Alcotest.failf "unexpected error: %a" Io_sched.pp_error e

let test_transient_write_failure_retries () =
  let disk, s = make () in
  let d = ok (Io_sched.append s ~extent:0 ~data:"x" ~input:Dep.trivial) in
  Disk.fail_once disk ~extent:0;
  ok (Io_sched.flush s);
  Alcotest.(check bool) "retried to durability" true (Dep.is_persistent d)

let test_permanent_write_failure_poisons_queue () =
  let disk, s = make () in
  let d1 = ok (Io_sched.append s ~extent:0 ~data:"a" ~input:Dep.trivial) in
  let d2 = ok (Io_sched.append s ~extent:0 ~data:"b" ~input:Dep.trivial) in
  Disk.fail_permanently disk ~extent:0;
  ok (Io_sched.flush s);
  Alcotest.(check bool) "first failed" true (Dep.has_failed d1);
  Alcotest.(check bool) "second failed" true (Dep.has_failed d2);
  Alcotest.(check int) "queue drained" 0 (Io_sched.pending_count s)

let test_quarantine_after_permanent_failure () =
  let disk, s = make () in
  ignore (ok (Io_sched.append s ~extent:0 ~data:"lost-data" ~input:Dep.trivial));
  Disk.fail_permanently disk ~extent:0;
  ok (Io_sched.flush s);
  Disk.heal disk ~extent:0;
  (* volatile state resynchronized and the extent retired *)
  Alcotest.(check bool) "quarantined" true (Io_sched.quarantined s ~extent:0);
  Alcotest.(check int) "soft pointer resynced" 0 (Io_sched.soft_ptr s ~extent:0);
  (match Io_sched.append s ~extent:0 ~data:"nope" ~input:Dep.trivial with
  | Error (Io_sched.Io Disk.Permanent) -> ()
  | _ -> Alcotest.fail "appends on a quarantined extent must be rejected");
  (* a reset lifts the quarantine with a fresh, never-used epoch *)
  let before = Io_sched.epoch s ~extent:0 in
  ignore (ok (Io_sched.reset s ~extent:0 ~input:Dep.trivial));
  Alcotest.(check bool) "not quarantined" false (Io_sched.quarantined s ~extent:0);
  Alcotest.(check bool) "epoch advanced" true (Io_sched.epoch s ~extent:0 > before);
  ignore (ok (Io_sched.append s ~extent:0 ~data:"fresh" ~input:Dep.trivial));
  ok (Io_sched.flush s);
  Alcotest.(check int) "durable epoch matches minted epoch"
    (Io_sched.epoch s ~extent:0) (Disk.epoch disk ~extent:0)

let test_monotone_epochs_across_lost_resets () =
  (* A reset lost to a permanent failure must not allow its epoch to be
     re-minted: locators of lost writes would collide with new data. *)
  let disk, s = make () in
  ignore (ok (Io_sched.append s ~extent:0 ~data:"old" ~input:Dep.trivial));
  ok (Io_sched.flush s);
  ignore (ok (Io_sched.reset s ~extent:0 ~input:Dep.trivial));
  let lost_epoch = Io_sched.epoch s ~extent:0 in
  Disk.fail_permanently disk ~extent:0;
  ok (Io_sched.flush s);
  Disk.heal disk ~extent:0;
  Alcotest.(check int) "epoch resynced to durable" (Disk.epoch disk ~extent:0)
    (Io_sched.epoch s ~extent:0);
  ignore (ok (Io_sched.reset s ~extent:0 ~input:Dep.trivial));
  Alcotest.(check bool) "lost epoch never re-minted" true
    (Io_sched.epoch s ~extent:0 > lost_epoch)

let test_stats () =
  let _, s = make () in
  ignore (ok (Io_sched.append s ~extent:0 ~data:"aa" ~input:Dep.trivial));
  ignore (ok (Io_sched.reset s ~extent:1 ~input:Dep.trivial));
  ok (Io_sched.flush s);
  let st = Io_sched.stats s in
  Alcotest.(check int) "appends" 1 st.Io_sched.appends;
  Alcotest.(check int) "resets" 1 st.Io_sched.resets;
  Alcotest.(check int) "ios" 2 st.Io_sched.ios_issued;
  Alcotest.(check int) "bytes" 2 st.Io_sched.bytes_written

(* Group-commit writeback: adjacent ready appends merge into one disk IO. *)
let test_submit_batch_coalesces () =
  let disk, s = make () in
  let d1 = ok (Io_sched.append s ~extent:0 ~data:"aa" ~input:Dep.trivial) in
  let d2 = ok (Io_sched.append s ~extent:0 ~data:"bb" ~input:Dep.trivial) in
  let d3 = ok (Io_sched.append s ~extent:0 ~data:"cc" ~input:Dep.trivial) in
  let n = Io_sched.submit_batch s in
  Alcotest.(check int) "three appends, one io" 1 n;
  Alcotest.(check bool) "all persistent" true
    (Dep.is_persistent d1 && Dep.is_persistent d2 && Dep.is_persistent d3);
  Alcotest.(check string) "durable image merged in order" "aabbcc"
    (Disk.durable_image disk ~extent:0);
  let obs = Io_sched.obs s in
  Alcotest.(check int) "k-1 coalesced" 2 (Obs.counter_value obs "iosched.coalesced_append");
  Alcotest.(check int) "one batch submit" 1 (Obs.counter_value obs "iosched.batch_submit")

let test_submit_batch_intra_run_deps () =
  (* A chain of same-extent appends each depending on the previous one: a
     single-IO pump can only issue the head, but the merged IO is atomic, so
     submit_batch may (and does) issue the whole chain as one write. *)
  let disk, s = make () in
  let d1 = ok (Io_sched.append s ~extent:0 ~data:"aa" ~input:Dep.trivial) in
  let d2 = ok (Io_sched.append s ~extent:0 ~data:"bb" ~input:d1) in
  let d3 = ok (Io_sched.append s ~extent:0 ~data:"cc" ~input:d2) in
  let n = Io_sched.submit_batch s in
  Alcotest.(check int) "chained run still one io" 1 n;
  Alcotest.(check bool) "chain persistent" true (Dep.is_persistent d3);
  Alcotest.(check string) "chain durable" "aabbcc" (Disk.durable_image disk ~extent:0)

let test_submit_batch_respects_external_deps () =
  let disk, s = make () in
  let p = Dep.Promise.create () in
  ignore (ok (Io_sched.append s ~extent:0 ~data:"aa" ~input:Dep.trivial));
  let blocked = ok (Io_sched.append s ~extent:0 ~data:"bb" ~input:(Dep.Promise.dep p)) in
  (* Extent 1's head is blocked outright: nothing may issue there. *)
  let blocked1 = ok (Io_sched.append s ~extent:1 ~data:"zz" ~input:(Dep.Promise.dep p)) in
  let n = Io_sched.submit_batch s in
  Alcotest.(check int) "only the unblocked head issues" 1 n;
  Alcotest.(check string) "merge stops at the external dep" "aa"
    (Disk.durable_image disk ~extent:0);
  Alcotest.(check string) "blocked extent untouched" "" (Disk.durable_image disk ~extent:1);
  Alcotest.(check bool) "blocked writes still pending" false
    (Dep.is_persistent blocked || Dep.is_persistent blocked1);
  Alcotest.(check int) "still staged" 2 (Io_sched.pending_count s)

let test_submit_batch_max_ios () =
  let _, s = make () in
  ignore (ok (Io_sched.append s ~extent:0 ~data:"aa" ~input:Dep.trivial));
  ignore (ok (Io_sched.append s ~extent:1 ~data:"bb" ~input:Dep.trivial));
  ignore (ok (Io_sched.append s ~extent:2 ~data:"cc" ~input:Dep.trivial));
  Alcotest.(check int) "bounded" 2 (Io_sched.submit_batch ~max_ios:2 s);
  Alcotest.(check int) "remainder" 1 (Io_sched.submit_batch s)

let () =
  Alcotest.run "iosched"
    [
      ( "staging",
        [
          Alcotest.test_case "volatile read sees pending" `Quick test_volatile_read_sees_pending;
          Alcotest.test_case "dependency orders issuance" `Quick test_dependency_orders_issuance;
          Alcotest.test_case "fifo per extent" `Quick test_fifo_per_extent;
          Alcotest.test_case "and dep" `Quick test_and_dep;
          Alcotest.test_case "promise" `Quick test_promise;
          Alcotest.test_case "promise cycle terminates" `Quick test_promise_cycle_terminates;
          Alcotest.test_case "reset epoch volatile" `Quick test_reset_epoch_volatile;
          Alcotest.test_case "extent full" `Quick test_extent_full;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "group commit",
        [
          Alcotest.test_case "coalesces adjacent appends" `Quick test_submit_batch_coalesces;
          Alcotest.test_case "merges intra-run dependency chains" `Quick
            test_submit_batch_intra_run_deps;
          Alcotest.test_case "respects external dependencies" `Quick
            test_submit_batch_respects_external_deps;
          Alcotest.test_case "max_ios bound" `Quick test_submit_batch_max_ios;
        ] );
      ( "crash",
        [
          Alcotest.test_case "drops pending" `Quick test_crash_drops_pending;
          Alcotest.test_case "persists all" `Quick test_crash_persists_all;
          Alcotest.test_case "split pages" `Quick test_crash_split_pages;
          QCheck_alcotest.to_alcotest prop_crash_respects_deps;
          QCheck_alcotest.to_alcotest prop_crash_prefix_of_staged;
        ] );
      ( "failures",
        [
          Alcotest.test_case "stuck on unbound promise" `Quick
            test_flush_stuck_on_unbound_promise;
          QCheck_alcotest.to_alcotest prop_flush_forward_progress;
          Alcotest.test_case "transient write retries" `Quick
            test_transient_write_failure_retries;
          Alcotest.test_case "permanent write poisons queue" `Quick
            test_permanent_write_failure_poisons_queue;
          Alcotest.test_case "quarantine after permanent failure" `Quick
            test_quarantine_after_permanent_failure;
          Alcotest.test_case "monotone epochs across lost resets" `Quick
            test_monotone_epochs_across_lost_resets;
        ] );
    ]
