(* Teeth tests for lib/lint: every analyzer rule must catch a seeded
   violation, the clean tree must pass, and the static lock graph must be
   a superset of what the live hot-path model observes. Synthetic sources
   go through [scan_file]/[analyze] directly, so each rule is exercised
   in isolation without touching the real tree. *)

let findings_of ?dynamic_edges files =
  let scans = List.map (fun (path, source) -> Linter.scan_file ~path ~source) files in
  (Linter.analyze ?dynamic_edges scans).Linter.findings

let has rule fs = List.exists (fun f -> f.Linter.rule = rule) fs

let pp_all fs =
  String.concat "; " (List.map (fun f -> Format.asprintf "%a" Linter.pp_finding f) fs)

(* --- primitive confinement --- *)

let test_primitive_caught () =
  let fs =
    findings_of [ ("lib/store/evil.ml", "let c = Atomic.make 0\nlet () = Atomic.incr c\n") ]
  in
  Alcotest.(check bool) "raw Atomic outside allowlist flagged" true (has "primitive" fs)

let test_primitive_allowlisted () =
  let fs = findings_of [ ("lib/conc/fine.ml", "let c = Atomic.make 0\n") ] in
  Alcotest.(check bool) "Atomic allowed in lib/conc" false (has "primitive" fs)

let test_mutex_type_caught () =
  let fs = findings_of [ ("lib/store/evil.ml", "type t = { m : Mutex.t }\n") ] in
  Alcotest.(check bool) "Mutex.t in a record type flagged" true (has "primitive" fs)

(* --- static lock-order graph --- *)

(* shard-before-stack is the documented order; [bad] reverses it. *)
let reversed_src =
  "type t = { shards : Conc.Rwlock.t array; stack : Conc.Rwlock.t }\n\
   let good t = Conc.Rwlock.with_write t.shards.(0) (fun () -> \n\
  \  Conc.Rwlock.with_write t.stack (fun () -> ()))\n\
   let bad t = Conc.Rwlock.with_write t.stack (fun () -> \n\
  \  Conc.Rwlock.with_write t.shards.(0) (fun () -> ()))\n"

let test_reversed_acquisition_cycle () =
  let fs = findings_of [ ("lib/store/evil.ml", reversed_src) ] in
  let cycles =
    List.filter
      (fun f ->
        f.Linter.rule = "lockgraph"
        &&
        let m = f.Linter.message in
        let has_sub s =
          let n = String.length s in
          let rec go i = i + n <= String.length m && (String.sub m i n = s || go (i + 1)) in
          go 0
        in
        has_sub "cycle")
      fs
  in
  Alcotest.(check bool) (Printf.sprintf "cycle reported (%s)" (pp_all fs)) true (cycles <> [])

let good_src =
  "type t = { shards : Conc.Rwlock.t array; stack : Conc.Rwlock.t }\n\
   let good t = Conc.Rwlock.with_write t.shards.(0) (fun () -> \n\
  \  Conc.Rwlock.with_write t.stack (fun () -> ()))\n"

let test_ordered_discipline_clean () =
  let fs = findings_of [ ("lib/store/fine.ml", good_src) ] in
  Alcotest.(check string) (pp_all fs) "" (pp_all fs)

let test_same_class_nesting_caught () =
  let src =
    "type t = { stack : Conc.Rwlock.t }\n\
     let bad a b = Conc.Rwlock.with_write a.stack (fun () -> \n\
    \  Conc.Rwlock.with_write b.stack (fun () -> ()))\n"
  in
  let fs = findings_of [ ("lib/store/evil.ml", src) ] in
  Alcotest.(check bool)
    (Printf.sprintf "stack->stack nesting flagged (%s)" (pp_all fs))
    true
    (List.exists (fun f -> f.Linter.rule = "lockgraph" && f.Linter.symbol = "stack->stack") fs)

let test_shard_self_edge_allowed () =
  (* shard has a documented internal order (ascending index), so nested
     shard acquisitions are legal. *)
  let src =
    "type t = { shards : Conc.Rwlock.t array }\n\
     let fine t = Conc.Rwlock.with_write t.shards.(0) (fun () -> \n\
    \  Conc.Rwlock.with_write t.shards.(1) (fun () -> ()))\n"
  in
  let fs = findings_of [ ("lib/store/fine.ml", src) ] in
  Alcotest.(check string) (pp_all fs) "" (pp_all fs)

let test_cycle_through_call_graph () =
  (* The reversed edge only appears once calls are resolved: [outer]
     holds stack and calls [inner], which takes a shard lock. *)
  let src =
    "type t = { shards : Conc.Rwlock.t array; stack : Conc.Rwlock.t }\n\
     let good t = Conc.Rwlock.with_write t.shards.(0) (fun () -> \n\
    \  Conc.Rwlock.with_write t.stack (fun () -> ()))\n\
     let inner t = Conc.Rwlock.with_write t.shards.(0) (fun () -> ())\n\
     let outer t = Conc.Rwlock.with_write t.stack (fun () -> inner t)\n"
  in
  let fs = findings_of [ ("lib/store/evil.ml", src) ] in
  Alcotest.(check bool)
    (Printf.sprintf "transitive cycle reported (%s)" (pp_all fs))
    true
    (List.exists (fun f -> f.Linter.rule = "lockgraph") fs)

let test_unclassified_lock_caught () =
  let src = "let f weird = Conc.Rwlock.with_write weird (fun () -> ())\n" in
  let fs = findings_of [ ("lib/store/evil.ml", src) ] in
  Alcotest.(check bool) "unclassifiable lock name flagged" true (has "lockgraph" fs)

(* --- determinism lints --- *)

let test_self_init_caught () =
  let fs = findings_of [ ("lib/store/evil.ml", "let () = Random.self_init ()\n") ] in
  Alcotest.(check bool) "Random.self_init flagged" true (has "random" fs)

let test_wallclock_caught () =
  let fs = findings_of [ ("lib/store/evil.ml", "let t = Unix.gettimeofday ()\n") ] in
  Alcotest.(check bool) "wall-clock read in lib/ flagged" true (has "wallclock" fs)

let test_wallclock_allowed_in_bench () =
  let fs = findings_of [ ("bench/timer.ml", "let t = Unix.gettimeofday ()\n") ] in
  Alcotest.(check bool) "wall-clock read in bench/ allowed" false (has "wallclock" fs)

let test_hashtbl_iter_caught () =
  let fs =
    findings_of [ ("lib/store/evil.ml", "let f h = Hashtbl.iter (fun _ _ -> ()) h\n") ]
  in
  Alcotest.(check bool) "order-fragile Hashtbl.iter flagged" true (has "hashtbl" fs)

let test_hashtbl_iter_allowed_in_smc () =
  let fs =
    findings_of [ ("lib/smc/fine.ml", "let f h = Hashtbl.iter (fun _ _ -> ()) h\n") ]
  in
  Alcotest.(check bool) "Hashtbl.iter allowed in lib/smc" false (has "hashtbl" fs)

(* --- Obs blind-spot audit --- *)

let test_unregistered_metric_caught () =
  let fs =
    findings_of [ ("lib/store/evil.ml", "let v obs = Obs.counter_value obs \"nope_total\"\n") ]
  in
  Alcotest.(check bool) "unregistered metric reference flagged" true (has "metric" fs)

let test_registered_metric_clean () =
  let fs =
    findings_of
      [
        ("lib/store/a.ml", "let c obs = Obs.counter obs \"ok_total\"\n");
        ("lib/store/b.ml", "let v obs = Obs.counter_value obs \"ok_total\"\n");
      ]
  in
  Alcotest.(check bool) "cross-file registration satisfies the audit" false (has "metric" fs)

(* --- dynamic cross-check --- *)

let one_good = [ ("lib/store/fine.ml", String.concat "\n" [
  "type t = { shards : Conc.Rwlock.t array; stack : Conc.Rwlock.t }";
  "let good t = Conc.Rwlock.with_write t.shards.(0) (fun () ->";
  "  Conc.Rwlock.with_write t.stack (fun () -> ()))"; "" ]) ]

let test_dynamic_edge_missing_statically () =
  let fs = findings_of ~dynamic_edges:[ ("stack", "shard") ] one_good in
  Alcotest.(check bool)
    (Printf.sprintf "dynamic-only edge is a finding (%s)" (pp_all fs))
    true (has "lockgraph" fs)

let test_dynamic_subset_clean () =
  let fs = findings_of ~dynamic_edges:[ ("shard", "stack") ] one_good in
  Alcotest.(check string) (pp_all fs) "" (pp_all fs)

(* --- waivers --- *)

let test_waiver_parse () =
  match Linter.parse_waivers "# comment\n\nprimitive lib/a.ml Atomic.make -- because\n" with
  | Ok [ w ] ->
    Alcotest.(check string) "rule" "primitive" w.Linter.w_rule;
    Alcotest.(check string) "file" "lib/a.ml" w.Linter.w_file;
    Alcotest.(check string) "symbol" "Atomic.make" w.Linter.w_symbol;
    Alcotest.(check string) "reason" "because" w.Linter.w_reason
  | Ok ws -> Alcotest.failf "expected one waiver, got %d" (List.length ws)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_waiver_malformed () =
  match Linter.parse_waivers "primitive lib/a.ml Atomic.make no separator\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a waiver without ' -- ' must not parse"

let test_waiver_apply_and_stale () =
  let fs =
    findings_of [ ("lib/store/evil.ml", "let c = Atomic.make 0\nlet d = Atomic.make 1\n") ]
  in
  let waive rule file symbol =
    { Linter.w_rule = rule; w_file = file; w_symbol = symbol; w_reason = "test" }
  in
  let matching = waive "primitive" "lib/store/evil.ml" "Atomic.make" in
  let stale = waive "primitive" "lib/other.ml" "Atomic.make" in
  let kept, unused = Linter.apply_waivers ~waivers:[ matching; stale ] fs in
  Alcotest.(check string) "one waiver covers both same-symbol findings" "" (pp_all kept);
  Alcotest.(check int) "unmatched waiver reported stale" 1 (List.length unused)

let test_dynamic_graph_parse () =
  let edges = Linter.parse_dynamic_graph "# header\nshard stack\nshard shard\n" in
  Alcotest.(check (list (pair string string)))
    "edges" [ ("shard", "stack"); ("shard", "shard") ] edges

(* --- the real tree --- *)

let repo_root () =
  let rec go dir =
    if Sys.file_exists (Filename.concat dir ".git") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else go parent
  in
  go (Sys.getcwd ())

let test_clean_tree () =
  match repo_root () with
  | None -> () (* no checkout visible from the build dir; covered in CI *)
  | Some root ->
    let findings, report, stale_waivers = Linter.run ~root () in
    Alcotest.(check string) "clean tree has no findings" "" (pp_all findings);
    Alcotest.(check int) "no stale waivers" 0 (List.length stale_waivers);
    Alcotest.(check bool) "the scan saw the tree" true (report.Linter.files_scanned > 50)

(* Static >= dynamic, live: every lock-class edge the Smc hot-path model
   observes must already be in the static graph — otherwise the extractor
   is blind to a code path the harness can reach. Same computation as
   [validate --shared --lint-graph], without the subprocess. *)
let test_static_superset_of_dynamic () =
  match repo_root () with
  | None -> ()
  | Some root ->
    let _, report, _ = Linter.run ~root () in
    let dynamic =
      List.concat_map
        (fun r ->
          let o = r.Conc.Conc_shared.outcome in
          List.filter_map
            (fun (a, b) ->
              match
                (List.assoc_opt a o.Smc.lock_names, List.assoc_opt b o.Smc.lock_names)
              with
              | Some na, Some nb -> Some (na, nb)
              | _ -> None)
            o.Smc.lock_edges)
        (Conc.Conc_shared.run ~budget:3000 ())
      |> List.sort_uniq compare
    in
    Alcotest.(check bool) "the model observed lock edges" true (dynamic <> []);
    List.iter
      (fun (a, b) ->
        Alcotest.(check bool)
          (Printf.sprintf "dynamic edge %s->%s appears statically" a b)
          true
          (List.mem (a, b) report.Linter.static_edges))
      dynamic

let () =
  Alcotest.run "lint"
    [
      ( "primitive",
        [
          Alcotest.test_case "raw Atomic caught" `Quick test_primitive_caught;
          Alcotest.test_case "allowlist honoured" `Quick test_primitive_allowlisted;
          Alcotest.test_case "Mutex.t type caught" `Quick test_mutex_type_caught;
        ] );
      ( "lockgraph",
        [
          Alcotest.test_case "reversed acquisition -> cycle" `Quick test_reversed_acquisition_cycle;
          Alcotest.test_case "documented order clean" `Quick test_ordered_discipline_clean;
          Alcotest.test_case "same-class nesting caught" `Quick test_same_class_nesting_caught;
          Alcotest.test_case "shard self-edge allowed" `Quick test_shard_self_edge_allowed;
          Alcotest.test_case "cycle through call graph" `Quick test_cycle_through_call_graph;
          Alcotest.test_case "unclassified lock caught" `Quick test_unclassified_lock_caught;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "Random.self_init caught" `Quick test_self_init_caught;
          Alcotest.test_case "wall clock caught" `Quick test_wallclock_caught;
          Alcotest.test_case "wall clock ok in bench/" `Quick test_wallclock_allowed_in_bench;
          Alcotest.test_case "Hashtbl.iter caught" `Quick test_hashtbl_iter_caught;
          Alcotest.test_case "Hashtbl.iter ok in lib/smc" `Quick test_hashtbl_iter_allowed_in_smc;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "unregistered ref caught" `Quick test_unregistered_metric_caught;
          Alcotest.test_case "cross-file registration ok" `Quick test_registered_metric_clean;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "dynamic-only edge caught" `Quick test_dynamic_edge_missing_statically;
          Alcotest.test_case "dynamic subset clean" `Quick test_dynamic_subset_clean;
          Alcotest.test_case "graph file parse" `Quick test_dynamic_graph_parse;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "parse" `Quick test_waiver_parse;
          Alcotest.test_case "malformed rejected" `Quick test_waiver_malformed;
          Alcotest.test_case "apply + stale" `Quick test_waiver_apply_and_stale;
        ] );
      ( "tree",
        [
          Alcotest.test_case "clean tree passes" `Slow test_clean_tree;
          Alcotest.test_case "static superset of dynamic" `Slow test_static_superset_of_dynamic;
        ] );
    ]
