(* Tests for the unified observability layer: the registry itself (labels,
   scoping, histograms, trace ring), parity between the legacy stats views
   and the registry they are built from, one registry spanning the whole
   storage stack, the blind-spot gate (paper section 4.2), and trace
   attachment to counterexamples. *)

module S = Store.Default

let contains s affix =
  let n = String.length affix in
  let rec go i = i + n <= String.length s && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* {2 Registry semantics} *)

let test_counter_basics () =
  let obs = Obs.create ~scope:"t" () in
  let c = Obs.counter obs "req" in
  Obs.Counter.incr c;
  Obs.Counter.add c 4;
  Alcotest.(check int) "value" 5 (Obs.Counter.value c);
  (* resolving again yields the same series *)
  Obs.Counter.incr (Obs.counter obs "req");
  Alcotest.(check int) "shared series" 6 (Obs.counter_value obs "req")

let test_label_scoping () =
  let obs = Obs.create () in
  let a = Obs.counter ~labels:[ ("disk", "0") ] obs "io" in
  let b = Obs.counter ~labels:[ ("disk", "1") ] obs "io" in
  Obs.Counter.incr a;
  Obs.Counter.incr a;
  Obs.Counter.incr b;
  Alcotest.(check int) "disk 0" 2 (Obs.counter_value ~labels:[ ("disk", "0") ] obs "io");
  Alcotest.(check int) "disk 1" 1 (Obs.counter_value ~labels:[ ("disk", "1") ] obs "io");
  Alcotest.(check int) "unlabelled distinct" 0 (Obs.counter_value obs "io");
  (* label order does not create a new series *)
  let c1 = Obs.counter ~labels:[ ("a", "1"); ("b", "2") ] obs "multi" in
  let c2 = Obs.counter ~labels:[ ("b", "2"); ("a", "1") ] obs "multi" in
  Obs.Counter.incr c1;
  Alcotest.(check int) "order-insensitive" 1 (Obs.Counter.value c2)

let test_instance_scoping () =
  (* two registries never collide — the fleet's per-store invariant *)
  let o1 = Obs.create ~scope:"store-0" () in
  let o2 = Obs.create ~scope:"store-1" () in
  Obs.Counter.add (Obs.counter o1 "cache.hit") 7;
  Alcotest.(check int) "o1 sees its own" 7 (Obs.counter_value o1 "cache.hit");
  Alcotest.(check int) "o2 untouched" 0 (Obs.counter_value o2 "cache.hit")

let test_kind_mismatch () =
  let obs = Obs.create () in
  ignore (Obs.counter obs "x");
  match Obs.gauge obs "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "re-registering a counter as a gauge must fail"

let test_gauge () =
  let obs = Obs.create () in
  let g = Obs.gauge obs "pending" in
  Obs.Gauge.set_int g 3;
  Alcotest.(check (float 0.0)) "set_int" 3.0 (Obs.Gauge.value g);
  Obs.Gauge.set g 0.5;
  Alcotest.(check (float 0.0)) "set" 0.5 (Obs.Gauge.value g)

let test_histogram_bucketing () =
  let obs = Obs.create () in
  let h = Obs.histogram ~buckets:[ 10.0; 100.0 ] obs "bytes" in
  List.iter (Obs.Histogram.observe h) [ 5.0; 10.0; 50.0; 500.0 ];
  Alcotest.(check int) "count" 4 (Obs.Histogram.count h);
  Alcotest.(check (float 0.0)) "sum" 565.0 (Obs.Histogram.sum h);
  (* bounds inclusive, last bucket is the overflow *)
  match Obs.Histogram.buckets h with
  | [ (10.0, 2); (100.0, 1); (bound, 1) ] when bound = infinity -> ()
  | bs ->
    Alcotest.failf "unexpected buckets: %s"
      (String.concat "; " (List.map (fun (b, n) -> Printf.sprintf "(%g,%d)" b n) bs))

let test_snapshot_and_reset () =
  let obs = Obs.create () in
  Obs.Counter.incr (Obs.counter obs "b");
  Obs.Counter.incr (Obs.counter obs "a");
  Obs.Gauge.set (Obs.gauge obs "g") 2.0;
  let names = List.map (fun s -> s.Obs.name) (Obs.snapshot obs) in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "g" ] names;
  Obs.reset obs;
  Alcotest.(check int) "counter zeroed" 0 (Obs.counter_value obs "a");
  (* handles stay live across reset *)
  Obs.Counter.incr (Obs.counter obs "a");
  Alcotest.(check int) "still wired" 1 (Obs.counter_value obs "a")

let test_jsonl () =
  let obs = Obs.create ~scope:"test" () in
  Obs.Counter.add (Obs.counter ~labels:[ ("k", "v\"q") ] obs "c") 2;
  Obs.Gauge.set (Obs.gauge obs "g") 1.5;
  ignore (Obs.histogram ~buckets:[ 1.0 ] obs "h");
  let lines = String.split_on_char '\n' (String.trim (Obs.to_jsonl obs)) in
  Alcotest.(check int) "one line per metric" 3 (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool) "scope present" true (contains line {|"scope":"test"|}))
    lines

(* {2 Trace ring} *)

let test_ring_wraparound () =
  let obs = Obs.create ~trace_capacity:4 () in
  Alcotest.(check bool) "tracing on" true (Obs.tracing obs);
  for i = 0 to 9 do
    Obs.emit obs ~layer:"l" "e" [ ("i", string_of_int i) ]
  done;
  Alcotest.(check int) "emitted survives wrap" 10 (Obs.events_emitted obs);
  let seqs = List.map (fun (e : Obs.event) -> e.Obs.seq) (Obs.recent obs) in
  Alcotest.(check (list int)) "last capacity events, oldest first" [ 6; 7; 8; 9 ] seqs;
  let seqs = List.map (fun (e : Obs.event) -> e.Obs.seq) (Obs.recent ~n:2 obs) in
  Alcotest.(check (list int)) "recent ~n trims from the old end" [ 8; 9 ] seqs;
  match Obs.recent ~n:1 obs with
  | [ e ] -> Alcotest.(check string) "attrs survive" "9" (List.assoc "i" e.Obs.attrs)
  | _ -> Alcotest.fail "recent ~n:1"

let test_tracing_disabled () =
  let obs = Obs.create () in
  Alcotest.(check bool) "off by default" false (Obs.tracing obs);
  Obs.emit obs ~layer:"l" "e" [];
  Alcotest.(check int) "no-op" 0 (Obs.events_emitted obs);
  Alcotest.(check int) "empty" 0 (List.length (Obs.recent obs))

let test_set_tracing () =
  let obs = Obs.create ~trace_capacity:8 () in
  Obs.set_tracing obs false;
  Obs.emit obs ~layer:"l" "dropped" [];
  Obs.set_tracing obs true;
  Obs.emit obs ~layer:"l" "kept" [];
  match Obs.recent obs with
  | [ e ] -> Alcotest.(check string) "only resumed events" "kept" e.Obs.event
  | es -> Alcotest.failf "expected 1 event, got %d" (List.length es)

(* {2 Legacy stats views are views over the registry} *)

let disk_config = { Disk.extent_count = 8; pages_per_extent = 8; page_size = 32 }

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "iosched error: %a" Io_sched.pp_error e

let test_iosched_stats_parity () =
  let sched = Io_sched.create ~seed:3L (Disk.create disk_config) in
  for i = 0 to 5 do
    ignore (ok (Io_sched.append sched ~extent:(i mod 4) ~data:"payload" ~input:Dep.trivial))
  done;
  ignore (Io_sched.pump sched);
  ignore (ok (Io_sched.reset sched ~extent:7 ~input:Dep.trivial));
  ignore (Io_sched.pump sched);
  let st = Io_sched.stats sched in
  let obs = Io_sched.obs sched in
  Alcotest.(check int) "appends" st.Io_sched.appends (Obs.counter_value obs "iosched.append");
  Alcotest.(check int) "resets" st.Io_sched.resets (Obs.counter_value obs "iosched.reset");
  Alcotest.(check int) "ios" st.Io_sched.ios_issued (Obs.counter_value obs "iosched.io_issued");
  Alcotest.(check int) "bytes" st.Io_sched.bytes_written
    (Obs.counter_value obs "iosched.bytes_issued");
  Alcotest.(check int) "crashes" st.Io_sched.crashes (Obs.counter_value obs "iosched.crash");
  Alcotest.(check bool) "non-trivial" true (st.Io_sched.appends > 0 && st.Io_sched.ios_issued > 0);
  (* the scheduler inherited the disk's registry: one registry, two layers *)
  Alcotest.(check bool) "disk writes in same registry" true
    (Obs.counter_value obs "disk.write" > 0)

let test_cache_stats_parity () =
  let sched = Io_sched.create ~seed:4L (Disk.create disk_config) in
  let cache = Cache.create ~capacity_pages:2 sched in
  ignore (ok (Io_sched.append sched ~extent:0 ~data:(String.make 96 'x') ~input:Dep.trivial));
  ignore (Io_sched.pump sched);
  for _ = 1 to 3 do
    ignore (ok (Cache.read cache ~extent:0 ~off:0 ~len:32));
    ignore (ok (Cache.read cache ~extent:0 ~off:0 ~len:32));
    (* third distinct page overflows the 2-page capacity *)
    ignore (ok (Cache.read cache ~extent:0 ~off:32 ~len:32));
    ignore (ok (Cache.read cache ~extent:0 ~off:64 ~len:32))
  done;
  let st = Cache.stats cache in
  let obs = Cache.obs cache in
  Alcotest.(check int) "hits" st.Cache.hits (Obs.counter_value obs "cache.hit");
  Alcotest.(check int) "misses" st.Cache.misses (Obs.counter_value obs "cache.miss");
  Alcotest.(check int) "evictions" st.Cache.evictions (Obs.counter_value obs "cache.eviction");
  Alcotest.(check bool) "non-trivial" true (st.Cache.hits > 0 && st.Cache.evictions > 0)

(* {2 One registry across the whole stack} *)

let layer_of_metric name =
  match String.index_opt name '.' with
  | Some i -> (
    match String.sub name 0 i with
    | "reclaim" -> "chunk"  (* reclaim counters are the chunk store's *)
    | "crash" -> "iosched"
    | l -> l)
  | None -> name

let test_store_unifies_layers () =
  let s = S.create S.test_config in
  for i = 0 to 19 do
    match S.put s ~key:(Printf.sprintf "k%d" (i mod 8)) ~value:(String.make (20 + i) 'v') with
    | Ok _ | Error S.No_space -> ()
    | Error e -> Alcotest.failf "put: %a" S.pp_error e
  done;
  List.iter (fun k -> ignore (S.get s ~key:k)) [ "k0"; "k1"; "missing" ];
  ignore (S.delete s ~key:"k2");
  ignore (S.flush_index s);
  ignore (S.flush_superblock s);
  ignore (S.pump s 10_000);
  let layers =
    List.sort_uniq compare
      (List.filter_map
         (fun (sample : Obs.sample) ->
           match sample.Obs.value with
           | Obs.Counter_v n when n > 0 -> Some (layer_of_metric sample.Obs.name)
           | _ -> None)
         (Obs.snapshot (S.obs s)))
  in
  List.iter
    (fun layer ->
      Alcotest.(check bool) (layer ^ " instrumented") true (List.mem layer layers))
    [ "disk"; "iosched"; "cache"; "chunk"; "index"; "store"; "superblock"; "logroll" ];
  (* and the trace ring saw the traffic *)
  Alcotest.(check bool) "events recorded" true (Obs.events_emitted (S.obs s) > 0)

let test_store_registries_are_private () =
  let a = S.create S.test_config in
  let b = S.create S.test_config in
  (match S.put a ~key:"k" ~value:"v" with Ok _ -> () | Error e -> Alcotest.failf "%a" S.pp_error e);
  Alcotest.(check int) "a counted" 1 (Obs.counter_value (S.obs a) "store.put");
  Alcotest.(check int) "b clean" 0 (Obs.counter_value (S.obs b) "store.put")

(* {2 Multi-domain handle updates and registry merging}

   The thread-safety contract (obs.mli): handle updates are safe from any
   set of domains; registration and merge_into are driver-side operations
   performed while no workers run. *)

let test_counter_atomic_across_domains () =
  let obs = Obs.create ~trace_capacity:0 () in
  let c = Obs.counter obs "hits" in
  let writers = 4 and per_writer = 25_000 in
  let worker () =
    for _ = 1 to per_writer do
      Obs.Counter.incr c
    done
  in
  let ds = List.init (writers - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join ds;
  (* no lost updates: a plain int would drop increments here *)
  Alcotest.(check int) "exact total" (writers * per_writer) (Obs.Counter.value c)

let test_merge_counters_from_domain_registries () =
  (* the lib/par pattern: one registry per worker domain, merged in seed
     order after the joins *)
  let workers = 3 and per_worker = 10_000 in
  let regs = List.init workers (fun _ -> Obs.create ~trace_capacity:0 ()) in
  let ds =
    List.map
      (fun obs ->
        Domain.spawn (fun () ->
            let c = Obs.counter obs "work" in
            for _ = 1 to per_worker do
              Obs.Counter.incr c
            done))
      regs
  in
  List.iter Domain.join ds;
  let into = Obs.create ~trace_capacity:0 () in
  Obs.Counter.add (Obs.counter into "work") 7;
  List.iter (fun src -> Obs.merge_into ~into src) regs;
  Alcotest.(check int) "sum of all domains" (7 + (workers * per_worker))
    (Obs.counter_value into "work")

let test_merge_gauge_adopts_last () =
  let into = Obs.create () in
  Obs.Gauge.set (Obs.gauge into "depth") 1.0;
  let a = Obs.create () and b = Obs.create () in
  Obs.Gauge.set (Obs.gauge a "depth") 2.0;
  Obs.Gauge.set (Obs.gauge b "depth") 3.0;
  Obs.merge_into ~into a;
  Obs.merge_into ~into b;
  (* last-merged wins, as a sequential aggregation's final set would *)
  Alcotest.(check (float 0.0)) "adopted" 3.0 (Obs.Gauge.value (Obs.gauge into "depth"))

let test_merge_histogram_bound_mismatch () =
  let into = Obs.create () in
  ignore (Obs.histogram ~buckets:[ 1.0; 10.0 ] into "lat");
  let src = Obs.create () in
  Obs.Histogram.observe (Obs.histogram ~buckets:[ 1.0; 100.0 ] src "lat") 5.0;
  Alcotest.check_raises "bounds differ"
    (Invalid_argument "Obs.merge_into: histogram \"lat\" bucket bounds differ") (fun () ->
      Obs.merge_into ~into src)

let test_merge_histograms_from_domains () =
  let mk () = Obs.create ~trace_capacity:0 () in
  let regs = List.init 3 (fun _ -> mk ()) in
  let ds =
    List.mapi
      (fun i obs ->
        Domain.spawn (fun () ->
            let h = Obs.histogram obs "lat" in
            for j = 1 to 100 do
              Obs.Histogram.observe h (float_of_int ((i * 100) + j))
            done))
      regs
  in
  List.iter Domain.join ds;
  let into = mk () in
  List.iter (fun src -> Obs.merge_into ~into src) regs;
  match Obs.find into "lat" with
  | Some (Obs.Histogram_v { count; sum; buckets }) ->
    Alcotest.(check int) "count" 300 count;
    (* sum of 1..300 *)
    Alcotest.(check (float 0.001)) "sum" 45_150.0 sum;
    Alcotest.(check int) "bucket mass" 300 (List.fold_left (fun a (_, n) -> a + n) 0 buckets)
  | _ -> Alcotest.fail "histogram missing after merge"

(* {2 Coverage facade and the blind-spot gate} *)

let test_coverage_facade () =
  Util.Coverage.reset ();
  Util.Coverage.hit "manual.path";
  Alcotest.(check int) "direct hit" 1 (Util.Coverage.count "manual.path");
  (* instance counters with ~coverage:true feed the same global table *)
  let obs = Obs.create () in
  let c = Obs.counter ~coverage:true obs "manual.path" in
  Obs.Counter.incr c;
  Obs.Counter.incr c;
  Alcotest.(check int) "instance feeds global" 3 (Util.Coverage.count "manual.path");
  Alcotest.(check int) "instance keeps its own" 2 (Obs.counter_value obs "manual.path");
  Alcotest.(check (list string))
    "blind spots" [ "never.hit" ]
    (Util.Coverage.blind_spots ~expected:[ "manual.path"; "never.hit" ] ())

(* The gate of paper section 4.2: after a standard validation workload,
   every expected coverage path must have fired at least once. This is the
   in-tree version of the check `bin/validate` runs before deployment. *)
let expected_coverage =
  [
    "cache.hit"; "cache.miss"; "cache.eviction"; "chunk.get.stale_locator";
    "index.get.memtable"; "index.get.run"; "index.run_written"; "index.compact";
    "reclaim.scan.valid_frame"; "reclaim.scan.invalid_frame"; "reclaim.evacuated";
    "reclaim.dropped"; "crash.torn_append"; "superblock.record";
    "superblock.free_claim_withheld"; "store.put.gc_fallback";
  ]

let test_blind_spot_gate () =
  Faults.disable_all ();
  Util.Coverage.reset ();
  let config = Lfm.Harness.default_config in
  for seed = 0 to 79 do
    let _, outcome =
      Lfm.Harness.run_seed config ~profile:Lfm.Gen.Full ~bias:Lfm.Gen.default_bias ~length:60
        ~seed
    in
    match outcome with
    | Lfm.Harness.Passed -> ()
    | Lfm.Harness.Failed f -> Alcotest.failf "baseline failure: %a" Lfm.Harness.pp_failure f
  done;
  Alcotest.(check (list string))
    "no blind spots" []
    (Util.Coverage.blind_spots ~expected:expected_coverage ())

(* The request plane has its own expected-coverage list: a short chaos
   campaign must exercise the retry, breaker, quorum-ack, read-repair and
   partial-write paths, or the fault-tolerance machinery has gone silent.
   This is the in-tree version of the gate `bin/validate --chaos` runs. *)
let fleet_expected_coverage =
  [
    "fleet.retry"; "fleet.breaker_open"; "fleet.quorum_ack"; "fleet.read_repair";
    "fleet.partial_write";
  ]

let test_fleet_blind_spot_gate () =
  Faults.disable_all ();
  Util.Coverage.reset ();
  let summary = Experiments.Chaos.run ~campaigns:10 ~length:40 ~seed:0 () in
  Alcotest.(check int) "campaigns clean" summary.Experiments.Chaos.campaigns
    summary.Experiments.Chaos.clean;
  Alcotest.(check (list string))
    "no fleet blind spots" []
    (Util.Coverage.blind_spots ~expected:fleet_expected_coverage ())

(* {2 Counterexamples carry the trace ring} *)

let test_counterexample_has_trace () =
  Faults.disable_all ();
  let r = Lfm.Detect.detect ~max_sequences:500 ~minimize:true ~seed:11 Faults.F4_disk_return_loses_shards in
  Alcotest.(check bool) "found" true r.Lfm.Detect.found;
  (match r.Lfm.Detect.failure with
  | None -> Alcotest.fail "no failure recorded"
  | Some f ->
    Alcotest.(check bool) "trace attached" true (f.Lfm.Harness.trace <> []);
    (* events are in order and the report renders them *)
    let seqs = List.map (fun (e : Obs.event) -> e.Obs.seq) f.Lfm.Harness.trace in
    Alcotest.(check (list int)) "ordered" (List.sort compare seqs) seqs;
    let rendered = Format.asprintf "%a" Lfm.Harness.pp_failure f in
    Alcotest.(check bool) "rendered in report" true (contains rendered "trailing trace"));
  (* the minimized counterexample replays to a failure whose report also
     carries the trace *)
  match r.Lfm.Detect.minimized_ops with
  | None -> Alcotest.fail "no minimized counterexample"
  | Some ops ->
    Faults.enable Faults.F4_disk_return_loses_shards;
    Fun.protect
      ~finally:(fun () -> Faults.disable_all ())
      (fun () ->
        match Lfm.Harness.run Lfm.Harness.default_config ops with
        | Lfm.Harness.Passed -> Alcotest.fail "minimized sequence no longer fails"
        | Lfm.Harness.Failed f ->
          let rendered = Format.asprintf "%a" Lfm.Harness.pp_failure f in
          Alcotest.(check bool) "minimized report has trace" true
            (contains rendered "trailing trace"))

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "label scoping" `Quick test_label_scoping;
          Alcotest.test_case "instance scoping" `Quick test_instance_scoping;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "snapshot and reset" `Quick test_snapshot_and_reset;
          Alcotest.test_case "jsonl export" `Quick test_jsonl;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "disabled is no-op" `Quick test_tracing_disabled;
          Alcotest.test_case "pause and resume" `Quick test_set_tracing;
        ] );
      ( "parity",
        [
          Alcotest.test_case "iosched stats" `Quick test_iosched_stats_parity;
          Alcotest.test_case "cache stats" `Quick test_cache_stats_parity;
        ] );
      ( "stack",
        [
          Alcotest.test_case "one registry, all layers" `Quick test_store_unifies_layers;
          Alcotest.test_case "per-store registries" `Quick test_store_registries_are_private;
        ] );
      ( "merge",
        [
          Alcotest.test_case "counter atomic across domains" `Quick
            test_counter_atomic_across_domains;
          Alcotest.test_case "merge per-domain counters" `Quick
            test_merge_counters_from_domain_registries;
          Alcotest.test_case "gauge adopts last" `Quick test_merge_gauge_adopts_last;
          Alcotest.test_case "histogram bound mismatch" `Quick
            test_merge_histogram_bound_mismatch;
          Alcotest.test_case "merge per-domain histograms" `Quick
            test_merge_histograms_from_domains;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "facade" `Quick test_coverage_facade;
          Alcotest.test_case "blind-spot gate" `Slow test_blind_spot_gate;
          Alcotest.test_case "fleet blind-spot gate" `Slow test_fleet_blind_spot_gate;
        ] );
      ( "counterexamples",
        [ Alcotest.test_case "trace attached" `Slow test_counterexample_has_trace ] );
    ]
