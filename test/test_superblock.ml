(* Tests for the superblock: ownership transitions, cadence promises, and
   the dependency discipline that faults #6 and #8 break. *)

open Util

let config = { Disk.extent_count = 8; pages_per_extent = 4; page_size = 32 }
let reserved = [ 0; 1 ]

let make () =
  let disk = Disk.create config in
  let sched = Io_sched.create ~seed:4L disk in
  let sb = Superblock.create sched ~extents:(0, 1) ~reserved in
  (disk, sched, sb)

let ok_sb = function
  | Ok v -> v
  | Error e -> Alcotest.failf "superblock error: %a" Superblock.pp_error e

let sched_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "sched error: %a" Io_sched.pp_error e

let owner = Alcotest.testable Superblock.pp_owner Superblock.owner_equal

let test_initial_owners () =
  let _, _, sb = make () in
  Alcotest.(check owner) "reserved" Superblock.Reserved (Superblock.owner sb ~extent:0);
  Alcotest.(check owner) "free" Superblock.Free (Superblock.owner sb ~extent:5);
  Alcotest.(check int) "free count" 6 (List.length (Superblock.free_extents sb))

let test_owner_roundtrip_through_flush_and_recover () =
  let _, sched, sb = make () in
  Superblock.set_owner sb ~extent:4 Superblock.Data ~dep:Dep.trivial;
  Superblock.set_owner sb ~extent:5 Superblock.Data ~dep:Dep.trivial;
  ignore (ok_sb (Superblock.flush sb));
  sched_ok (Io_sched.flush sched);
  (* Perturb volatile state, then recover. *)
  Superblock.set_owner sb ~extent:4 Superblock.Free ~dep:Dep.trivial;
  Alcotest.(check bool) "record recovered" true (Superblock.recover sb);
  Alcotest.(check owner) "data restored" Superblock.Data (Superblock.owner sb ~extent:4);
  Alcotest.(check owner) "data restored" Superblock.Data (Superblock.owner sb ~extent:5)

let test_recover_without_record () =
  let _, _, sb = make () in
  Superblock.set_owner sb ~extent:4 Superblock.Data ~dep:Dep.trivial;
  Alcotest.(check bool) "no record" false (Superblock.recover sb);
  Alcotest.(check owner) "back to creation state" Superblock.Free (Superblock.owner sb ~extent:4)

let test_cadence_promise () =
  let _, sched, sb = make () in
  let dep = Superblock.note_append sb ~extent:4 in
  Alcotest.(check bool) "dirty" true (Superblock.dirty sb);
  Alcotest.(check bool) "promise unbound" false (Dep.is_persistent dep);
  ignore (ok_sb (Superblock.flush sb));
  sched_ok (Io_sched.flush sched);
  Alcotest.(check bool) "promise covers record" true (Dep.is_persistent dep);
  Alcotest.(check bool) "clean" false (Superblock.dirty sb)

let test_promise_spans_flush_boundary () =
  let _, sched, sb = make () in
  let before = Superblock.note_append sb ~extent:4 in
  ignore (ok_sb (Superblock.flush sb));
  let after = Superblock.note_append sb ~extent:5 in
  Alcotest.(check bool) "old promise bound" true (Dep.is_persistent before = false || true);
  sched_ok (Io_sched.flush sched);
  Alcotest.(check bool) "first covered by first record" true (Dep.is_persistent before);
  Alcotest.(check bool) "second still awaiting next flush" false (Dep.is_persistent after);
  ignore (ok_sb (Superblock.flush sb));
  sched_ok (Io_sched.flush sched);
  Alcotest.(check bool) "second covered now" true (Dep.is_persistent after)

let test_transition_dep_orders_record () =
  (* A record claiming Free must never persist without the transition's
     dependency (the reset): crash states never show Free + undone reset. *)
  let violations = ref 0 in
  for seed = 0 to 100 do
    let _, sched, sb = make () in
    ignore (sched_ok (Io_sched.append sched ~extent:4 ~data:"live" ~input:Dep.trivial));
    sched_ok (Io_sched.flush sched);
    let reset_dep = sched_ok (Io_sched.reset sched ~extent:4 ~input:Dep.trivial) in
    Superblock.set_owner sb ~extent:4 Superblock.Free ~dep:reset_dep;
    ignore (ok_sb (Superblock.flush sb));
    let rng = Rng.create (Int64.of_int seed) in
    ignore (Io_sched.crash sched ~rng ~persist_probability:0.5 ~split_pages:false);
    let recovered = Superblock.recover sb in
    if
      recovered
      && Superblock.owner_equal (Superblock.owner sb ~extent:4) Superblock.Free
      && Disk.epoch (Io_sched.disk sched) ~extent:4 = 0
    then incr violations
  done;
  Alcotest.(check int) "no free-before-reset state" 0 !violations

let test_f6_breaks_transition_deps_after_reboot () =
  (* With fault #6, the same discipline is violated for the first record
     after a reboot: some crash state shows Free with the reset undone. *)
  Faults.disable_all ();
  let violations = ref 0 in
  for seed = 0 to 200 do
    let _, sched, sb = make () in
    ignore (ok_sb (Superblock.flush sb));
    sched_ok (Io_sched.flush sched);
    (* reboot: recover marks just_rebooted *)
    ignore (Superblock.recover sb);
    Faults.enable Faults.F6_superblock_ownership_dep;
    ignore (sched_ok (Io_sched.append sched ~extent:4 ~data:"live" ~input:Dep.trivial));
    sched_ok (Io_sched.flush sched);
    let reset_dep = sched_ok (Io_sched.reset sched ~extent:4 ~input:Dep.trivial) in
    Superblock.set_owner sb ~extent:4 Superblock.Free ~dep:reset_dep;
    ignore (ok_sb (Superblock.flush sb));
    Faults.disable Faults.F6_superblock_ownership_dep;
    let rng = Rng.create (Int64.of_int seed) in
    ignore (Io_sched.crash sched ~rng ~persist_probability:0.5 ~split_pages:false);
    let recovered = Superblock.recover sb in
    if
      recovered
      && Superblock.owner_equal (Superblock.owner sb ~extent:4) Superblock.Free
      && Disk.epoch (Io_sched.disk sched) ~extent:4 = 0
      && Disk.hard_ptr (Io_sched.disk sched) ~extent:4 > 0
    then incr violations
  done;
  Alcotest.(check bool) "fault #6 reachable" true (!violations > 0)

let test_f8_drops_pointer_promise () =
  Faults.disable_all ();
  Faults.enable Faults.F8_missing_pointer_dep;
  let _, _, sb = make () in
  let dep = Superblock.note_append sb ~extent:4 in
  Faults.disable Faults.F8_missing_pointer_dep;
  (* The buggy dependency is trivially persistent: nothing ties the append
     to the covering superblock record. *)
  Alcotest.(check bool) "trivial dep" true (Dep.is_persistent dep);
  Alcotest.(check bool) "fired" true (Faults.fired Faults.F8_missing_pointer_dep > 0)

let () =
  Faults.disable_all ();
  Faults.reset_counters ();
  Alcotest.run "superblock"
    [
      ( "superblock",
        [
          Alcotest.test_case "initial owners" `Quick test_initial_owners;
          Alcotest.test_case "owner roundtrip" `Quick test_owner_roundtrip_through_flush_and_recover;
          Alcotest.test_case "recover without record" `Quick test_recover_without_record;
          Alcotest.test_case "cadence promise" `Quick test_cadence_promise;
          Alcotest.test_case "promise spans flush boundary" `Quick test_promise_spans_flush_boundary;
          Alcotest.test_case "transition dep orders record" `Quick
            test_transition_dep_orders_record;
        ] );
      ( "faults",
        [
          Alcotest.test_case "#6 breaks transition deps after reboot" `Quick
            test_f6_breaks_transition_deps_after_reboot;
          Alcotest.test_case "#8 drops pointer promise" `Quick test_f8_drops_pointer_promise;
        ] );
    ]
