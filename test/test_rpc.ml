(* Tests for the RPC layer: wire-protocol roundtrips, decoder totality on
   arbitrary bytes (paper section 7), and multi-disk request routing. *)

module S = Store.Default

let requests =
  [
    Rpc.Message.Put { key = "k"; value = "v" };
    Rpc.Message.Put { key = ""; value = "" };
    Rpc.Message.Get { key = "some key" };
    Rpc.Message.Delete { key = "k" };
    Rpc.Message.List;
    Rpc.Message.Remove_disk { disk = 3 };
    Rpc.Message.Return_disk { disk = 0 };
    Rpc.Message.Bulk_delete { keys = [ "a"; "b"; "c" ] };
    Rpc.Message.Bulk_delete { keys = [] };
    Rpc.Message.Migrate { key = "shard"; to_disk = 2 };
    Rpc.Message.Node_stats;
    Rpc.Message.Scan_request { lo = None; hi = None; after = None; max_results = 10 };
    Rpc.Message.Scan_request
      { lo = Some "a"; hi = Some "z"; after = Some "m"; max_results = 1 };
    Rpc.Message.Scan_request { lo = Some ""; hi = None; after = None; max_results = 0 };
    Rpc.Message.Batch_request { ops = [] };
    Rpc.Message.Batch_request
      {
        ops =
          [
            Rpc.Message.Batch_put { key = "a"; value = "1" };
            Rpc.Message.Batch_delete { key = "b" };
            Rpc.Message.Batch_put { key = ""; value = "" };
          ];
      };
  ]

let responses =
  [
    Rpc.Message.Ack;
    Rpc.Message.Value None;
    Rpc.Message.Value (Some "payload");
    Rpc.Message.Keys [ "a"; "b" ];
    Rpc.Message.Keys [];
    Rpc.Message.Stats { disks = 4; in_service = 3; keys = 17; metrics = [] };
    Rpc.Message.Stats
      {
        disks = 1;
        in_service = 1;
        keys = 0;
        metrics =
          [
            { Rpc.Message.metric_name = "cache.hit"; labels = [ ("disk", "0") ]; value = 42.0 };
            {
              Rpc.Message.metric_name = "store.value_bytes.sum";
              labels = [ ("disk", "0"); ("kind", "put") ];
              value = 4097.25;
            };
            { Rpc.Message.metric_name = "iosched.pending"; labels = []; value = 0.1 };
          ];
      };
    Rpc.Message.Error_response "boom";
    Rpc.Message.Batch_response { statuses = [] };
    Rpc.Message.Batch_response
      {
        statuses =
          [ Rpc.Message.Op_ok; Rpc.Message.Op_error "no"; Rpc.Message.Op_ok ];
      };
    Rpc.Message.Batch_response
      {
        statuses =
          [ Rpc.Message.Op_quorum { acked = 2 }; Rpc.Message.Op_ok;
            Rpc.Message.Op_quorum { acked = 3 } ];
      };
    Rpc.Message.Scan_response { items = []; more = false };
    Rpc.Message.Scan_response
      { items = [ ("a", "1"); ("b", ""); ("", "empty key") ]; more = true };
    Rpc.Message.Quorum_ack { acked = 2; lagging = [ 4 ] };
    Rpc.Message.Quorum_ack { acked = 3; lagging = [] };
    Rpc.Message.Quorum_ack { acked = 1; lagging = [ 0; 2; 5 ] };
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match Rpc.Message.decode_request (Rpc.Message.encode_request req) with
      | Ok req' ->
        Alcotest.(check bool)
          (Format.asprintf "%a" Rpc.Message.pp_request req)
          true
          (Rpc.Message.request_equal req req')
      | Error e -> Alcotest.failf "decode failed: %a" Util.Codec.pp_error e)
    requests

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      match Rpc.Message.decode_response (Rpc.Message.encode_response resp) with
      | Ok resp' ->
        Alcotest.(check bool)
          (Format.asprintf "%a" Rpc.Message.pp_response resp)
          true
          (Rpc.Message.response_equal resp resp')
      | Error e -> Alcotest.failf "decode failed: %a" Util.Codec.pp_error e)
    responses

let test_trailing_bytes_rejected () =
  let bytes = Rpc.Message.encode_request Rpc.Message.List ^ "x" in
  match Rpc.Message.decode_request bytes with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes must be rejected"

(* Paper section 7: deserializers running on untrusted bytes must be
   total — for any sequence of on-disk/on-wire bytes, no panic. *)
let prop_decode_total =
  QCheck.Test.make ~name:"wire decoders total on arbitrary bytes" ~count:5000
    QCheck.(string_of_size Gen.(0 -- 80))
    (fun s ->
      let _ = Rpc.Message.decode_request s in
      let _ = Rpc.Message.decode_response s in
      true)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"random put roundtrips" ~count:500
    QCheck.(pair (string_of_size Gen.(0 -- 30)) (string_of_size Gen.(0 -- 200)))
    (fun (key, value) ->
      match Rpc.Message.(decode_request (encode_request (Put { key; value }))) with
      | Ok (Rpc.Message.Put p) -> String.equal p.key key && String.equal p.value value
      | _ -> false)

(* Satellite: degraded-mode statuses (quorum ack with lagging replicas,
   per-op quorum statuses in a batch) survive the wire byte-exactly. *)
let prop_degraded_roundtrip =
  QCheck.Test.make ~name:"degraded responses roundtrip byte-exact" ~count:500
    QCheck.(
      pair
        (pair (int_bound 16) (list_of_size Gen.(0 -- 12) (int_bound 64)))
        (list_of_size Gen.(0 -- 8) (int_bound 3)))
    (fun ((acked, lagging), quorums) ->
      let statuses =
        List.mapi
          (fun i q ->
            if i mod 2 = 0 then Rpc.Message.Op_quorum { acked = q } else Rpc.Message.Op_ok)
          quorums
      in
      List.for_all
        (fun resp ->
          let bytes = Rpc.Message.encode_response resp in
          match Rpc.Message.decode_response bytes with
          | Ok resp' ->
            Rpc.Message.response_equal resp resp'
            && String.equal bytes (Rpc.Message.encode_response resp')
          | Error e -> QCheck.Test.fail_reportf "decode: %a" Util.Codec.pp_error e)
        [
          Rpc.Message.Quorum_ack { acked; lagging };
          Rpc.Message.Batch_response { statuses };
        ])

(* The lagging-list count prefix is untrusted: a frame claiming more ids
   than [max_lagging_nodes] must be rejected, not looped over. *)
let test_quorum_ack_lagging_bound () =
  let w = Util.Codec.Writer.create () in
  Util.Codec.Writer.raw_string w "SR";
  Util.Codec.Writer.u8 w 6;
  Util.Codec.Writer.uint w 2;
  Util.Codec.Writer.u32 w (Int32.of_int (Rpc.Message.max_lagging_nodes + 1));
  match Rpc.Message.decode_response (Util.Codec.Writer.contents w) with
  | Error _ -> ()
  | Ok r -> Alcotest.failf "oversized lagging count accepted: %a" Rpc.Message.pp_response r

let make_node () = Rpc.Node.create ~disks:3 S.test_config

let test_put_get_across_disks () =
  let node = make_node () in
  let keys = List.init 12 (fun i -> Printf.sprintf "shard-%d" i) in
  List.iter
    (fun key ->
      match Rpc.Node.handle node (Rpc.Message.Put { key; value = key ^ "!" }) with
      | Rpc.Message.Ack -> ()
      | r -> Alcotest.failf "put: %a" Rpc.Message.pp_response r)
    keys;
  (* keys actually spread over multiple disks *)
  let disks = List.sort_uniq compare (List.map (Rpc.Node.disk_of_key node) keys) in
  Alcotest.(check bool) "spread" true (List.length disks > 1);
  List.iter
    (fun key ->
      match Rpc.Node.handle node (Rpc.Message.Get { key }) with
      | Rpc.Message.Value (Some v) -> Alcotest.(check string) key (key ^ "!") v
      | r -> Alcotest.failf "get: %a" Rpc.Message.pp_response r)
    keys

let test_list_unions_disks () =
  let node = make_node () in
  List.iter
    (fun key -> ignore (Rpc.Node.handle node (Rpc.Message.Put { key; value = "v" })))
    [ "a"; "b"; "c"; "d"; "e" ];
  match Rpc.Node.handle node Rpc.Message.List with
  | Rpc.Message.Keys keys ->
    Alcotest.(check (list string)) "all keys" [ "a"; "b"; "c"; "d"; "e" ] keys
  | r -> Alcotest.failf "list: %a" Rpc.Message.pp_response r

let test_remove_return_disk () =
  let node = make_node () in
  let key = "routed" in
  ignore (Rpc.Node.handle node (Rpc.Message.Put { key; value = "v" }));
  let disk = Rpc.Node.disk_of_key node key in
  (match Rpc.Node.handle node (Rpc.Message.Remove_disk { disk }) with
  | Rpc.Message.Ack -> ()
  | r -> Alcotest.failf "remove: %a" Rpc.Message.pp_response r);
  (match Rpc.Node.handle node (Rpc.Message.Get { key }) with
  | Rpc.Message.Error_response _ -> ()
  | r -> Alcotest.failf "get on removed disk should fail: %a" Rpc.Message.pp_response r);
  (match Rpc.Node.handle node Rpc.Message.List with
  | Rpc.Message.Error_response _ -> ()
  | r -> Alcotest.failf "partial listing must be an error: %a" Rpc.Message.pp_response r);
  (match Rpc.Node.handle node (Rpc.Message.Return_disk { disk }) with
  | Rpc.Message.Ack -> ()
  | r -> Alcotest.failf "return: %a" Rpc.Message.pp_response r);
  match Rpc.Node.handle node (Rpc.Message.Get { key }) with
  | Rpc.Message.Value (Some "v") -> ()
  | r -> Alcotest.failf "get after return: %a" Rpc.Message.pp_response r

let test_bulk_delete () =
  let node = make_node () in
  List.iter
    (fun key -> ignore (Rpc.Node.handle node (Rpc.Message.Put { key; value = "v" })))
    [ "a"; "b"; "c" ];
  (match Rpc.Node.handle node (Rpc.Message.Bulk_delete { keys = [ "a"; "c" ] }) with
  | Rpc.Message.Ack -> ()
  | r -> Alcotest.failf "bulk delete: %a" Rpc.Message.pp_response r);
  match Rpc.Node.handle node Rpc.Message.List with
  | Rpc.Message.Keys [ "b" ] -> ()
  | r -> Alcotest.failf "list after bulk delete: %a" Rpc.Message.pp_response r

let test_batch_request_dispatch () =
  let node = make_node () in
  let ops =
    [
      Rpc.Message.Batch_put { key = "a"; value = "1" };
      Rpc.Message.Batch_put { key = "b"; value = "2" };
      Rpc.Message.Batch_delete { key = "a" };
      Rpc.Message.Batch_put { key = "c"; value = "3" };
      Rpc.Message.Batch_put { key = "b"; value = "2bis" };
    ]
  in
  (match Rpc.Node.handle node (Rpc.Message.Batch_request { ops }) with
  | Rpc.Message.Batch_response { statuses } ->
    Alcotest.(check int) "one status per op" 5 (List.length statuses);
    List.iteri
      (fun i -> function
        | Rpc.Message.Op_ok -> ()
        | Rpc.Message.Op_quorum { acked } ->
          Alcotest.failf "op %d quorum-acked (%d) on a healthy node" i acked
        | Rpc.Message.Op_error msg -> Alcotest.failf "op %d failed: %s" i msg)
      statuses
  | r -> Alcotest.failf "batch: %a" Rpc.Message.pp_response r);
  (* Per-disk run batching must preserve program order per key. *)
  (match Rpc.Node.handle node (Rpc.Message.Get { key = "a" }) with
  | Rpc.Message.Value None -> ()
  | r -> Alcotest.failf "a should be put-then-deleted: %a" Rpc.Message.pp_response r);
  (match Rpc.Node.handle node (Rpc.Message.Get { key = "b" }) with
  | Rpc.Message.Value (Some "2bis") -> ()
  | r -> Alcotest.failf "b should hold the later write: %a" Rpc.Message.pp_response r);
  match Rpc.Node.handle node (Rpc.Message.Get { key = "c" }) with
  | Rpc.Message.Value (Some "3") -> ()
  | r -> Alcotest.failf "c: %a" Rpc.Message.pp_response r

(* Satellite invariant: a batch containing one invalid operation reports a
   per-op error for exactly that operation, the rest execute — and the
   request survives encode/decode byte-exactly on the way. *)
let prop_batch_one_bad_op =
  QCheck.Test.make ~name:"batch: one bad op fails alone, wire roundtrip byte-exact"
    ~count:300
    QCheck.(
      triple (int_bound 1000) bool
        (list_of_size Gen.(1 -- 8)
           (pair (string_of_size Gen.(1 -- 12)) (string_of_size Gen.(0 -- 40)))))
    (fun (pos, oversize, pairs) ->
      let n = List.length pairs in
      let bad = pos mod n in
      let ops =
        List.mapi
          (fun i (key, value) ->
            if i = bad then
              if oversize then
                Rpc.Message.Batch_put
                  { key = String.make (Rpc.Message.max_op_key_bytes + 1) 'k'; value }
              else Rpc.Message.Batch_put { key = ""; value }
            else if i mod 3 = 2 then Rpc.Message.Batch_delete { key = "d-" ^ key }
            else Rpc.Message.Batch_put { key; value })
          pairs
      in
      let req = Rpc.Message.Batch_request { ops } in
      let bytes = Rpc.Message.encode_request req in
      (match Rpc.Message.decode_request bytes with
      | Ok req' ->
        if not (Rpc.Message.request_equal req req') then
          QCheck.Test.fail_reportf "decode changed the request";
        let bytes' = Rpc.Message.encode_request req' in
        if not (String.equal bytes bytes') then
          QCheck.Test.fail_reportf "re-encode not byte-exact"
      | Error e -> QCheck.Test.fail_reportf "decode: %a" Util.Codec.pp_error e);
      let node = make_node () in
      match Rpc.Message.decode_response (Rpc.Node.handle_wire node bytes) with
      | Ok (Rpc.Message.Batch_response { statuses }) ->
        if List.length statuses <> n then
          QCheck.Test.fail_reportf "%d statuses for %d ops" (List.length statuses) n;
        List.iteri
          (fun i status ->
            match status, i = bad with
            | Rpc.Message.Op_error _, true | Rpc.Message.Op_ok, false -> ()
            | Rpc.Message.Op_ok, true -> QCheck.Test.fail_reportf "bad op %d accepted" i
            | Rpc.Message.Op_quorum _, _ ->
              QCheck.Test.fail_reportf "op %d quorum-acked on a healthy node" i
            | Rpc.Message.Op_error msg, false ->
              QCheck.Test.fail_reportf "healthy op %d rejected: %s" i msg)
          statuses;
        true
      | Ok r -> QCheck.Test.fail_reportf "unexpected response: %a" Rpc.Message.pp_response r
      | Error e -> QCheck.Test.fail_reportf "response decode: %a" Util.Codec.pp_error e)

(* The scan page size is untrusted: a frame asking for more than
   [max_scan_items] must be rejected at decode, not allocated for. *)
let test_scan_max_results_bound () =
  let w = Util.Codec.Writer.create () in
  Util.Codec.Writer.raw_string w "SR";
  Util.Codec.Writer.u8 w 10;
  Util.Codec.Writer.u8 w 0;
  (* lo absent *)
  Util.Codec.Writer.u8 w 0;
  (* hi absent *)
  Util.Codec.Writer.u8 w 0;
  (* after absent *)
  Util.Codec.Writer.uint w (Rpc.Message.max_scan_items + 1);
  match Rpc.Message.decode_request (Util.Codec.Writer.contents w) with
  | Error _ -> ()
  | Ok r -> Alcotest.failf "oversized max_results accepted: %a" Rpc.Message.pp_request r

(* Satellite: scan pagination is lossless and byte-exact — walking the
   range page by page over the wire (continuation token [after] = last key
   of the previous page) must reassemble exactly the single unpaginated
   scan, and every request and response frame must survive encode/decode
   byte-exactly. *)
let prop_scan_pagination =
  QCheck.Test.make ~name:"scan pagination reassembles unpaginated scan byte-exact"
    ~count:200
    QCheck.(
      triple (int_bound 1_000_000) (int_range 1 5)
        (list_of_size Gen.(0 -- 25) (string_of_size Gen.(1 -- 8))))
    (fun (seed, page, keys) ->
      let node = make_node () in
      let rng = Util.Rng.create (Int64.of_int seed) in
      List.iter
        (fun key ->
          let value = Bytes.to_string (Util.Rng.bytes rng (Util.Rng.int rng 40)) in
          match Rpc.Node.handle node (Rpc.Message.Put { key; value }) with
          | Rpc.Message.Ack -> ()
          | r -> QCheck.Test.fail_reportf "put: %a" Rpc.Message.pp_response r)
        keys;
      let scan ~after ~max_results =
        let req = Rpc.Message.Scan_request { lo = None; hi = None; after; max_results } in
        let bytes = Rpc.Message.encode_request req in
        (match Rpc.Message.decode_request bytes with
        | Ok req' ->
          if not (Rpc.Message.request_equal req req') then
            QCheck.Test.fail_reportf "decode changed the scan request";
          if not (String.equal bytes (Rpc.Message.encode_request req')) then
            QCheck.Test.fail_reportf "scan request re-encode not byte-exact"
        | Error e -> QCheck.Test.fail_reportf "request decode: %a" Util.Codec.pp_error e);
        let resp_bytes = Rpc.Node.handle_wire node bytes in
        match Rpc.Message.decode_response resp_bytes with
        | Ok (Rpc.Message.Scan_response { items; more } as resp) ->
          if not (String.equal resp_bytes (Rpc.Message.encode_response resp)) then
            QCheck.Test.fail_reportf "scan response re-encode not byte-exact";
          (items, more)
        | Ok r -> QCheck.Test.fail_reportf "scan: %a" Rpc.Message.pp_response r
        | Error e -> QCheck.Test.fail_reportf "response decode: %a" Util.Codec.pp_error e
      in
      let full, full_more = scan ~after:None ~max_results:Rpc.Message.max_scan_items in
      if full_more then QCheck.Test.fail_reportf "unpaginated scan claims a next page";
      let rec walk after acc steps =
        if steps > 100 then QCheck.Test.fail_reportf "pagination does not terminate";
        let items, more = scan ~after ~max_results:page in
        if List.length items > page then QCheck.Test.fail_reportf "page overflows max_results";
        let acc = acc @ items in
        if more then
          match List.rev items with
          | [] -> QCheck.Test.fail_reportf "more=true on an empty page"
          | (last, _) :: _ -> walk (Some last) acc (steps + 1)
        else acc
      in
      walk None [] 0 = full)

let test_stats () =
  let node = make_node () in
  ignore (Rpc.Node.handle node (Rpc.Message.Put { key = "k"; value = "v" }));
  match Rpc.Node.handle node Rpc.Message.Node_stats with
  | Rpc.Message.Stats { disks = 3; in_service = 3; keys = 1; metrics } ->
    Alcotest.(check bool) "metrics present" true (metrics <> []);
    (* every sample is tagged with its disk slot *)
    List.iter
      (fun (m : Rpc.Message.metric) ->
        match List.assoc_opt "disk" m.labels with
        | Some ("0" | "1" | "2") -> ()
        | _ -> Alcotest.failf "sample %s missing disk label" m.metric_name)
      metrics;
    (* the put we issued shows up in the serving disk's counters *)
    let disk = string_of_int (Rpc.Node.disk_of_key node "k") in
    let put_count =
      List.filter_map
        (fun (m : Rpc.Message.metric) ->
          if m.metric_name = "store.put" && List.assoc_opt "disk" m.labels = Some disk then
            Some m.value
          else None)
        metrics
    in
    Alcotest.(check (list (float 0.0))) "store.put on serving disk" [ 1.0 ] put_count
  | r -> Alcotest.failf "stats: %a" Rpc.Message.pp_response r

(* Stats metrics survive the full wire round-trip through handle_wire. *)
let test_stats_wire_roundtrip () =
  let node = make_node () in
  ignore (Rpc.Node.handle node (Rpc.Message.Put { key = "k"; value = "v" }));
  let direct = Rpc.Node.handle node Rpc.Message.Node_stats in
  let wire =
    Rpc.Node.handle_wire node (Rpc.Message.encode_request Rpc.Message.Node_stats)
  in
  match direct, Rpc.Message.decode_response wire with
  | Rpc.Message.Stats direct_stats, Ok (Rpc.Message.Stats wire_stats) ->
    (* request counters move between the two calls, so compare the stable
       fields and spot-check that both snapshots carry the same metric
       names rather than demanding equal values *)
    Alcotest.(check int) "disks" direct_stats.disks wire_stats.disks;
    let names ms = List.sort_uniq compare (List.map (fun m -> m.Rpc.Message.metric_name) ms) in
    Alcotest.(check (list string))
      "metric names" (names direct_stats.metrics) (names wire_stats.metrics)
  | r, _ -> Alcotest.failf "stats: %a" Rpc.Message.pp_response r

let test_handle_wire () =
  let node = make_node () in
  let resp_bytes =
    Rpc.Node.handle_wire node
      (Rpc.Message.encode_request (Rpc.Message.Put { key = "k"; value = "v" }))
  in
  (match Rpc.Message.decode_response resp_bytes with
  | Ok Rpc.Message.Ack -> ()
  | _ -> Alcotest.fail "expected ack");
  (* corrupt request -> encoded error, no exception *)
  let resp_bytes = Rpc.Node.handle_wire node "garbage bytes" in
  match Rpc.Message.decode_response resp_bytes with
  | Ok (Rpc.Message.Error_response _) -> ()
  | _ -> Alcotest.fail "expected error response"

let test_bad_disk () =
  let node = make_node () in
  match Rpc.Node.handle node (Rpc.Message.Remove_disk { disk = 99 }) with
  | Rpc.Message.Error_response _ -> ()
  | r -> Alcotest.failf "expected error: %a" Rpc.Message.pp_response r

let test_migrate () =
  let node = make_node () in
  let key = "wanderer" in
  ignore (Rpc.Node.handle node (Rpc.Message.Put { key; value = "v" }));
  let from_disk = Rpc.Node.disk_of_key node key in
  let to_disk = (from_disk + 1) mod Rpc.Node.disk_count node in
  (match Rpc.Node.handle node (Rpc.Message.Migrate { key; to_disk }) with
  | Rpc.Message.Ack -> ()
  | r -> Alcotest.failf "migrate: %a" Rpc.Message.pp_response r);
  Alcotest.(check int) "steering updated" to_disk (Rpc.Node.disk_of_key node key);
  (match Rpc.Node.handle node (Rpc.Message.Get { key }) with
  | Rpc.Message.Value (Some "v") -> ()
  | r -> Alcotest.failf "get after migrate: %a" Rpc.Message.pp_response r);
  (* the source disk no longer holds the shard *)
  (match S.get (Rpc.Node.store node ~disk:from_disk) ~key with
  | Ok None -> ()
  | _ -> Alcotest.fail "source copy should be deleted");
  (* no shard / bad disk *)
  (match Rpc.Node.handle node (Rpc.Message.Migrate { key = "ghost"; to_disk }) with
  | Rpc.Message.Error_response _ -> ()
  | r -> Alcotest.failf "migrate missing: %a" Rpc.Message.pp_response r);
  (match Rpc.Node.handle node (Rpc.Message.Migrate { key; to_disk = 99 }) with
  | Rpc.Message.Error_response _ -> ()
  | r -> Alcotest.failf "migrate bad disk: %a" Rpc.Message.pp_response r);
  (* idempotent when already there *)
  match Rpc.Node.handle node (Rpc.Message.Migrate { key; to_disk }) with
  | Rpc.Message.Ack -> ()
  | r -> Alcotest.failf "migrate same disk: %a" Rpc.Message.pp_response r

(* Node-level conformance: the whole multi-disk node against the hash-map
   model under random request/control traffic. *)
let prop_node_matches_model =
  QCheck.Test.make ~name:"node conformance vs model" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let node = make_node () in
      let model = Model.Kv_model.create () in
      let rng = Util.Rng.create (Int64.of_int seed) in
      let keys = [| "a"; "b"; "c"; "d"; "e" |] in
      for _ = 1 to 60 do
        let key = Util.Rng.pick rng keys in
        match Util.Rng.int rng 7 with
        | 0 | 1 -> (
          let value = Bytes.to_string (Util.Rng.bytes rng (Util.Rng.int rng 120)) in
          match Rpc.Node.handle node (Rpc.Message.Put { key; value }) with
          | Rpc.Message.Ack -> Model.Kv_model.put model ~key ~value
          | Rpc.Message.Error_response _ -> ()
          | r -> QCheck.Test.fail_reportf "put: %a" Rpc.Message.pp_response r)
        | 2 -> (
          match Rpc.Node.handle node (Rpc.Message.Delete { key }) with
          | Rpc.Message.Ack -> Model.Kv_model.delete model ~key
          | r -> QCheck.Test.fail_reportf "delete: %a" Rpc.Message.pp_response r)
        | 3 -> (
          let expected = Model.Kv_model.get model ~key in
          match Rpc.Node.handle node (Rpc.Message.Get { key }) with
          | Rpc.Message.Value actual ->
            if actual <> expected then QCheck.Test.fail_reportf "get divergence on %S" key
          | r -> QCheck.Test.fail_reportf "get: %a" Rpc.Message.pp_response r)
        | 4 -> (
          let to_disk = Util.Rng.int rng 3 in
          match Rpc.Node.handle node (Rpc.Message.Migrate { key; to_disk }) with
          | Rpc.Message.Ack | Rpc.Message.Error_response _ -> ()
          | r -> QCheck.Test.fail_reportf "migrate: %a" Rpc.Message.pp_response r)
        | 5 -> (
          match Rpc.Node.handle node Rpc.Message.List with
          | Rpc.Message.Keys actual ->
            if actual <> Model.Kv_model.list model then
              QCheck.Test.fail_reportf "list divergence"
          | r -> QCheck.Test.fail_reportf "list: %a" Rpc.Message.pp_response r)
        | _ -> ignore (Rpc.Node.tick node : Rpc.Node.tick_report)
      done;
      Array.for_all
        (fun key ->
          match Rpc.Node.handle node (Rpc.Message.Get { key }) with
          | Rpc.Message.Value actual -> actual = Model.Kv_model.get model ~key
          | _ -> false)
        keys)

let test_tick () =
  let node = make_node () in
  ignore (Rpc.Node.handle node (Rpc.Message.Put { key = "k"; value = "v" }));
  let report = Rpc.Node.tick node in
  Alcotest.(check int) "tick saw every disk" 3 report.Rpc.Node.disks;
  Alcotest.(check int) "no maintenance errors" 0 report.Rpc.Node.errors;
  let disk = Rpc.Node.disk_of_key node "k" in
  Alcotest.(check int) "writeback drained" 0
    (Io_sched.pending_count (S.sched (Rpc.Node.store node ~disk)));
  (* Permanently fail both superblock extents on the serving disk: once
     writeback quarantines them, maintenance flushes error out and the
     report plus the rpc.tick_error counter must both say so. *)
  let store = Rpc.Node.store node ~disk in
  Disk.fail_permanently (S.disk store) ~extent:0;
  Disk.fail_permanently (S.disk store) ~extent:1;
  let errors = ref 0 in
  for i = 1 to 5 do
    if !errors = 0 then begin
      ignore (S.put store ~key:(Printf.sprintf "dirty%d" i) ~value:"v");
      errors := (Rpc.Node.tick node).Rpc.Node.errors
    end
  done;
  Alcotest.(check bool) "maintenance errors surfaced" true (!errors > 0);
  Alcotest.(check bool) "rpc.tick_error bumped" true
    (Obs.counter_value (Rpc.Node.obs node) "rpc.tick_error" >= !errors)

let () =
  Alcotest.run "rpc"
    [
      ( "wire",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
          Alcotest.test_case "trailing bytes rejected" `Quick test_trailing_bytes_rejected;
          QCheck_alcotest.to_alcotest prop_decode_total;
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_degraded_roundtrip;
          Alcotest.test_case "quorum-ack lagging bound" `Quick test_quorum_ack_lagging_bound;
          Alcotest.test_case "scan max_results bound" `Quick test_scan_max_results_bound;
        ] );
      ( "node",
        [
          Alcotest.test_case "put/get across disks" `Quick test_put_get_across_disks;
          Alcotest.test_case "list unions disks" `Quick test_list_unions_disks;
          Alcotest.test_case "remove/return disk" `Quick test_remove_return_disk;
          Alcotest.test_case "bulk delete" `Quick test_bulk_delete;
          Alcotest.test_case "batch request dispatch" `Quick test_batch_request_dispatch;
          QCheck_alcotest.to_alcotest prop_batch_one_bad_op;
          QCheck_alcotest.to_alcotest prop_scan_pagination;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "stats wire roundtrip" `Quick test_stats_wire_roundtrip;
          Alcotest.test_case "handle wire" `Quick test_handle_wire;
          Alcotest.test_case "bad disk" `Quick test_bad_disk;
          Alcotest.test_case "migrate" `Quick test_migrate;
          Alcotest.test_case "tick" `Quick test_tick;
          QCheck_alcotest.to_alcotest prop_node_matches_model;
        ] );
    ]
