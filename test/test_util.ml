(* Unit and property tests for the util library: RNG determinism, CRC,
   UUIDs, and totality of the binary codecs. *)

open Util

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in bounds" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 5 9 in
    Alcotest.(check bool) "in range" true (v >= 5 && v <= 9)
  done

let test_rng_split_independent () =
  let a = Rng.create 42L in
  let b = Rng.split a in
  let va = Rng.int64 a and vb = Rng.int64 b in
  Alcotest.(check bool) "split streams differ" true (not (Int64.equal va vb))

let test_rng_weighted () =
  let rng = Rng.create 1L in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 2000 do
    let v = Rng.weighted rng [ (1, "a"); (9, "b") ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let a = Option.value ~default:0 (Hashtbl.find_opt counts "a") in
  let b = Option.value ~default:0 (Hashtbl.find_opt counts "b") in
  Alcotest.(check bool) "b dominates" true (b > 4 * a)

let test_rng_chance_extremes () =
  let rng = Rng.create 3L in
  Alcotest.(check bool) "p=0 never" false (Rng.chance rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.chance rng 1.0)

let test_crc_known () =
  (* Standard check value for "123456789". *)
  Alcotest.(check int32) "crc32 vector" 0xCBF43926l (Crc32.digest_string "123456789")

let test_crc_slice () =
  let b = Bytes.of_string "xx123456789yy" in
  Alcotest.(check int32) "slice" 0xCBF43926l (Crc32.digest_bytes ~off:2 ~len:9 b)

let test_crc_detects_flip () =
  let s = "hello world payload" in
  let crc = Crc32.digest_string s in
  let b = Bytes.of_string s in
  Bytes.set b 5 'X';
  Alcotest.(check bool) "differs" true (Crc32.digest_bytes b <> crc)

let test_uuid_roundtrip () =
  let rng = Rng.create 9L in
  let u = Uuid.generate rng in
  Alcotest.(check bool) "roundtrip" true
    (Uuid.equal u (Uuid.of_string_exn (Uuid.to_string u)));
  Alcotest.(check int) "hex length" 32 (String.length (Uuid.to_hex u));
  Alcotest.(check bool) "bad length rejected" true (Uuid.of_string "short" = None)

let test_codec_roundtrip () =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 0xAB;
  Codec.Writer.u16 w 0xBEEF;
  Codec.Writer.u32 w 0xDEADBEEFl;
  Codec.Writer.u64 w 0x0123456789ABCDEFL;
  Codec.Writer.uint w 424242;
  Codec.Writer.lstring w "payload";
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  Alcotest.(check int) "u8" 0xAB (Result.get_ok (Codec.Reader.u8 r));
  Alcotest.(check int) "u16" 0xBEEF (Result.get_ok (Codec.Reader.u16 r));
  Alcotest.(check int32) "u32" 0xDEADBEEFl (Result.get_ok (Codec.Reader.u32 r));
  Alcotest.(check int64) "u64" 0x0123456789ABCDEFL (Result.get_ok (Codec.Reader.u64 r));
  Alcotest.(check int) "uint" 424242 (Result.get_ok (Codec.Reader.uint r));
  Alcotest.(check string) "lstring" "payload" (Result.get_ok (Codec.Reader.lstring r));
  Alcotest.(check bool) "at end" true (Result.is_ok (Codec.Reader.expect_end r))

let test_codec_truncation () =
  let r = Codec.Reader.of_string "ab" in
  (match Codec.Reader.u32 r with
  | Error (Codec.Truncated { wanted = 4; available = 2 }) -> ()
  | _ -> Alcotest.fail "expected truncation error");
  let r = Codec.Reader.of_string "\xFF\xFF\xFF\x7F" in
  match Codec.Reader.lstring r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized length prefix must be rejected"

let test_codec_magic () =
  let r = Codec.Reader.of_string "XY" in
  match Codec.Reader.magic r "AB" with
  | Error (Codec.Bad_magic { expected = "AB"; found = "XY" }) -> ()
  | _ -> Alcotest.fail "expected bad magic"

(* Property: the reader never raises on arbitrary bytes (the paper's
   panic-freedom requirement for deserializers, section 7). *)
let prop_reader_total =
  QCheck.Test.make ~name:"reader total on arbitrary bytes" ~count:1000
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      let r = Codec.Reader.of_string s in
      let _ = Codec.Reader.u8 r in
      let _ = Codec.Reader.u16 r in
      let _ = Codec.Reader.lstring r in
      let _ = Codec.Reader.u64 r in
      true)

let prop_lstring_roundtrip =
  QCheck.Test.make ~name:"lstring roundtrip" ~count:500
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      let w = Codec.Writer.create () in
      Codec.Writer.lstring w s;
      let r = Codec.Reader.of_string (Codec.Writer.contents w) in
      Codec.Reader.lstring r = Ok s)

let prop_crc_deterministic =
  QCheck.Test.make ~name:"crc deterministic" ~count:500
    QCheck.(string_of_size Gen.(0 -- 100))
    (fun s -> Crc32.digest_string s = Crc32.digest_string s)

let test_coverage_basics () =
  Util.Coverage.reset ();
  Alcotest.(check int) "zero before" 0 (Util.Coverage.count "x");
  Util.Coverage.hit "x";
  Util.Coverage.hit "x";
  Util.Coverage.hit "y";
  Alcotest.(check int) "counted" 2 (Util.Coverage.count "x");
  Alcotest.(check (list (pair string int))) "snapshot sorted" [ ("x", 2); ("y", 1) ]
    (Util.Coverage.snapshot ());
  Alcotest.(check (list string)) "blind spots" [ "z" ]
    (Util.Coverage.blind_spots ~expected:[ "x"; "z" ] ());
  Util.Coverage.reset ();
  Alcotest.(check int) "reset" 0 (Util.Coverage.count "x")

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "weighted" `Quick test_rng_weighted;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known vector" `Quick test_crc_known;
          Alcotest.test_case "slice" `Quick test_crc_slice;
          Alcotest.test_case "detects bit flip" `Quick test_crc_detects_flip;
          QCheck_alcotest.to_alcotest prop_crc_deterministic;
        ] );
      ("uuid", [ Alcotest.test_case "roundtrip" `Quick test_uuid_roundtrip ]);
      ("coverage", [ Alcotest.test_case "basics" `Quick test_coverage_basics ]);
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "truncation" `Quick test_codec_truncation;
          Alcotest.test_case "magic" `Quick test_codec_magic;
          QCheck_alcotest.to_alcotest prop_reader_total;
          QCheck_alcotest.to_alcotest prop_lstring_roundtrip;
        ] );
    ]
