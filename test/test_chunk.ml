(* Tests for chunk framing and the chunk store: put/get, epoch-stale
   locators, allocation across extents, and reclamation. *)

open Util
open Chunk

let config = { Disk.extent_count = 8; pages_per_extent = 8; page_size = 32 }
let reserved = [ 0; 1 ]

let make () =
  let disk = Disk.create config in
  let sched = Io_sched.create ~seed:8L disk in
  let cache = Cache.create sched in
  let sb = Superblock.create sched ~extents:(0, 1) ~reserved in
  let rng = Rng.create 99L in
  let cs = Chunk_store.create sched ~cache ~superblock:sb ~rng in
  (disk, sched, sb, cs)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "chunk store error: %a" Chunk_store.pp_error e

(* {2 Frame format} *)

let test_frame_roundtrip () =
  let rng = Rng.create 1L in
  let uuid = Uuid.generate rng in
  let owner = Chunk_format.Shard "key-1" in
  let frame = Chunk_format.encode ~uuid ~owner ~payload:"the payload" in
  Alcotest.(check int) "frame_len" (String.length frame)
    (Chunk_format.frame_len ~owner ~payload_len:11);
  let prefix = String.sub frame 0 Chunk_format.prefix_len in
  Alcotest.(check int) "prefix length" (String.length frame)
    (Result.get_ok (Chunk_format.decode_prefix prefix));
  let chunk = Result.get_ok (Chunk_format.decode frame) in
  Alcotest.(check string) "payload" "the payload" chunk.Chunk_format.payload;
  Alcotest.(check bool) "owner" true (Chunk_format.owner_equal owner chunk.Chunk_format.owner)

let test_frame_detects_payload_corruption () =
  let rng = Rng.create 1L in
  let frame =
    Chunk_format.encode ~uuid:(Uuid.generate rng) ~owner:(Chunk_format.Index_run 3)
      ~payload:"sensitive"
  in
  let b = Bytes.of_string frame in
  (* flip one payload byte (prefix + owner(9) + uuid) *)
  let pos = Chunk_format.prefix_len + 9 + Uuid.size + 2 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
  match Chunk_format.decode (Bytes.to_string b) with
  | Error Codec.Bad_checksum -> ()
  | _ -> Alcotest.fail "payload corruption must fail the CRC"

let test_frame_detects_truncation () =
  let rng = Rng.create 1L in
  let frame =
    Chunk_format.encode ~uuid:(Uuid.generate rng) ~owner:(Chunk_format.Shard "k") ~payload:"data"
  in
  match Chunk_format.decode (String.sub frame 0 (String.length frame - 3)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated frame must fail"

let test_frame_uuid_mismatch () =
  let rng = Rng.create 1L in
  let frame =
    Chunk_format.encode ~uuid:(Uuid.generate rng) ~owner:(Chunk_format.Shard "k") ~payload:"data"
  in
  let b = Bytes.of_string frame in
  Bytes.set b (Bytes.length b - 1) '\xFF';
  match Chunk_format.decode ~check_crc:false (Bytes.to_string b) with
  | Error (Codec.Invalid _) -> ()
  | _ -> Alcotest.fail "tail uuid mismatch must fail"

(* Property: decode never raises on arbitrary bytes. *)
let prop_decode_total =
  QCheck.Test.make ~name:"frame decode total on arbitrary bytes" ~count:2000
    QCheck.(string_of_size Gen.(0 -- 128))
    (fun s ->
      let _ = Chunk_format.decode s in
      let _ = Chunk_format.decode_prefix s in
      true)

(* Property: encode/decode roundtrip for arbitrary payloads and owners. *)
let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame roundtrip" ~count:500
    QCheck.(pair (string_of_size Gen.(0 -- 100)) (string_of_size Gen.(0 -- 20)))
    (fun (payload, key) ->
      let rng = Rng.create (Int64.of_int (Hashtbl.hash (payload, key))) in
      let owner = Chunk_format.Shard key in
      let frame = Chunk_format.encode ~uuid:(Uuid.generate rng) ~owner ~payload in
      match Chunk_format.decode frame with
      | Ok c ->
        String.equal c.Chunk_format.payload payload
        && Chunk_format.owner_equal c.Chunk_format.owner owner
      | Error _ -> false)

(* {2 Chunk store} *)

let test_put_get () =
  let _, _, _, cs = make () in
  let loc, dep = ok (Chunk_store.put cs ~owner:(Chunk_format.Shard "a") ~payload:"hello") in
  Alcotest.(check bool) "not yet persistent" false (Dep.is_persistent dep);
  let chunk = ok (Chunk_store.get cs loc) in
  Alcotest.(check string) "payload" "hello" chunk.Chunk_format.payload

let test_put_becomes_persistent_after_sb_flush () =
  let _, sched, sb, cs = make () in
  let _, dep = ok (Chunk_store.put cs ~owner:(Chunk_format.Shard "a") ~payload:"hello") in
  ignore (Io_sched.flush sched);
  Alcotest.(check bool) "pointer promise still open" false (Dep.is_persistent dep);
  (match Superblock.flush sb with Ok _ -> () | Error _ -> Alcotest.fail "sb flush");
  ignore (Io_sched.flush sched);
  Alcotest.(check bool) "persistent once covered" true (Dep.is_persistent dep)

let test_put_batch_roundtrip_one_append () =
  let _, sched, _, cs = make () in
  let obs = Io_sched.obs sched in
  let items =
    List.init 3 (fun i -> (Chunk_format.Shard (Printf.sprintf "b%d" i), Printf.sprintf "pay-%d" i))
  in
  let results = ok (Chunk_store.put_batch cs ~items) in
  Alcotest.(check int) "one locator per item" 3 (List.length results);
  List.iteri
    (fun i (loc, _) ->
      let chunk = ok (Chunk_store.get cs loc) in
      Alcotest.(check string) (Printf.sprintf "payload %d" i) (Printf.sprintf "pay-%d" i)
        chunk.Chunk_format.payload;
      Alcotest.(check bool) (Printf.sprintf "owner %d" i) true
        (Chunk_format.owner_equal (Chunk_format.Shard (Printf.sprintf "b%d" i))
           chunk.Chunk_format.owner))
    results;
  (* The whole group staged as a single append: the group-commit win. *)
  Alcotest.(check int) "one append for the group" 1 (Obs.counter_value obs "iosched.append");
  Alcotest.(check int) "one group" 1 (Obs.counter_value obs "chunk.batch_group")

let test_put_batch_shares_group_dep () =
  let _, sched, sb, cs = make () in
  let items = List.init 3 (fun i -> (Chunk_format.Shard (Printf.sprintf "d%d" i), "x")) in
  let results = ok (Chunk_store.put_batch cs ~items) in
  ignore (Io_sched.flush sched);
  List.iter
    (fun (_, dep) ->
      Alcotest.(check bool) "pointer promise still open" false (Dep.is_persistent dep))
    results;
  (match Superblock.flush sb with Ok _ -> () | Error _ -> Alcotest.fail "sb flush");
  ignore (Io_sched.flush sched);
  List.iter
    (fun (_, dep) ->
      Alcotest.(check bool) "persistent once covered" true (Dep.is_persistent dep))
    results

let test_put_batch_spills_across_extents () =
  let _, sched, _, cs = make () in
  let obs = Io_sched.obs sched in
  (* ~90-byte payloads occupy 5 of an extent's 8 pages, so consecutive items
     cannot share an extent: every item opens its own group. *)
  let items =
    List.init 3 (fun i -> (Chunk_format.Shard (Printf.sprintf "s%d" i), String.make 90 'x'))
  in
  let results = ok (Chunk_store.put_batch cs ~items) in
  let extents =
    List.sort_uniq compare (List.map (fun (loc, _) -> loc.Locator.extent) results)
  in
  Alcotest.(check bool) "spilled to several extents" true (List.length extents >= 2);
  Alcotest.(check bool) "several groups" true (Obs.counter_value obs "chunk.batch_group" >= 2);
  List.iter
    (fun (loc, _) ->
      let chunk = ok (Chunk_store.get cs loc) in
      Alcotest.(check string) "spilled payload intact" (String.make 90 'x')
        chunk.Chunk_format.payload)
    results;
  ignore sched

let test_put_batch_oversized_rejected () =
  let _, _, _, cs = make () in
  match
    Chunk_store.put_batch cs
      ~items:
        [
          (Chunk_format.Shard "ok", "small");
          (Chunk_format.Shard "big", String.make (2 * Disk.extent_size config) 'x');
        ]
  with
  | Error Chunk_store.No_space -> ()
  | _ -> Alcotest.fail "batch with an oversized chunk must be rejected up front"

let test_stale_locator_after_reset () =
  let _, sched, _, cs = make () in
  let loc, _ = ok (Chunk_store.put cs ~owner:(Chunk_format.Shard "a") ~payload:"hello") in
  ignore (Io_sched.reset sched ~extent:loc.Locator.extent ~input:Dep.trivial);
  match Chunk_store.get cs loc with
  | Error (Chunk_store.Stale_locator _) -> ()
  | _ -> Alcotest.fail "stale locator must be rejected"

let test_allocation_moves_to_new_extent () =
  let _, _, _, cs = make () in
  (* Each ~90-byte payload occupies 5 pages (frame ≈ 138 bytes); an extent
     holds 8 pages, so each put opens or fills a fresh extent. The last
     free extent is held back as evacuation headroom. *)
  let extents = ref [] in
  for i = 0 to 3 do
    let loc, _ =
      ok
        (Chunk_store.put cs
           ~owner:(Chunk_format.Shard (Printf.sprintf "k%d" i))
           ~payload:(String.make 90 'x'))
    in
    if not (List.mem loc.Locator.extent !extents) then extents := loc.Locator.extent :: !extents
  done;
  Alcotest.(check bool) "multiple extents" true (List.length !extents >= 2)

let test_no_space () =
  let _, _, _, cs = make () in
  let rec fill n =
    if n = 0 then Alcotest.fail "disk never filled"
    else
      match Chunk_store.put cs ~owner:(Chunk_format.Shard "k") ~payload:(String.make 90 'x') with
      | Ok _ -> fill (n - 1)
      | Error Chunk_store.No_space -> ()
      | Error e -> Alcotest.failf "unexpected: %a" Chunk_store.pp_error e
  in
  fill 100

let test_oversized_chunk_rejected () =
  let _, _, _, cs = make () in
  match
    Chunk_store.put cs ~owner:(Chunk_format.Shard "k")
      ~payload:(String.make (2 * Disk.extent_size config) 'x')
  with
  | Error Chunk_store.No_space -> ()
  | _ -> Alcotest.fail "oversized chunk must be rejected"

let test_reclaim_evacuates_live_drops_dead () =
  let _, _, _, cs = make () in
  let live_loc, _ = ok (Chunk_store.put cs ~owner:(Chunk_format.Shard "live") ~payload:"LIVE") in
  let _dead_loc, _ = ok (Chunk_store.put cs ~owner:(Chunk_format.Shard "dead") ~payload:"DEAD") in
  let extent = live_loc.Locator.extent in
  let relocated = ref None in
  let reset_dep =
    ok
      (Chunk_store.reclaim cs ~extent ~index_basis:Dep.trivial
         ~classify:(fun owner _loc ->
           match owner with
           | Chunk_format.Shard "live" -> `Live
           | _ -> `Dead)
         ~relocate:(fun _owner ~old_loc:_ ~new_loc ~new_dep ->
           relocated := Some new_loc;
           new_dep))
  in
  ignore reset_dep;
  let st = Chunk_store.stats cs in
  Alcotest.(check int) "one evacuated" 1 st.Chunk_store.evacuated;
  Alcotest.(check int) "one dropped" 1 st.Chunk_store.dropped;
  match !relocated with
  | None -> Alcotest.fail "live chunk must be relocated"
  | Some new_loc ->
    Alcotest.(check bool) "moved off the extent" true (new_loc.Locator.extent <> extent);
    let chunk = ok (Chunk_store.get cs new_loc) in
    Alcotest.(check string) "payload preserved" "LIVE" chunk.Chunk_format.payload

let test_reclaim_aborts_on_read_error () =
  Faults.disable_all ();
  let disk, _, _, cs = make () in
  let loc, _ = ok (Chunk_store.put cs ~owner:(Chunk_format.Shard "a") ~payload:"data") in
  Disk.fail_once disk ~extent:loc.Locator.extent;
  (match
     Chunk_store.reclaim cs ~extent:loc.Locator.extent ~index_basis:Dep.trivial
       ~classify:(fun _ _ -> `Live)
       ~relocate:(fun _ ~old_loc:_ ~new_loc:_ ~new_dep -> new_dep)
   with
  | Error (Chunk_store.Io _) -> ()
  | _ -> Alcotest.fail "correct reclamation aborts on read error");
  (* The extent was not reset: data still readable. *)
  let chunk = ok (Chunk_store.get cs loc) in
  Alcotest.(check string) "survived" "data" chunk.Chunk_format.payload

let test_f5_reclaim_resets_despite_read_error () =
  Faults.disable_all ();
  let disk, _, _, cs = make () in
  let loc, _ = ok (Chunk_store.put cs ~owner:(Chunk_format.Shard "a") ~payload:"data") in
  Disk.fail_once disk ~extent:loc.Locator.extent;
  Faults.enable Faults.F5_reclaim_forgets_on_read_error;
  (match
     Chunk_store.reclaim cs ~extent:loc.Locator.extent ~index_basis:Dep.trivial
       ~classify:(fun _ _ -> `Live)
       ~relocate:(fun _ ~old_loc:_ ~new_loc:_ ~new_dep -> new_dep)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "buggy reclaim should proceed: %a" Chunk_store.pp_error e);
  Faults.disable Faults.F5_reclaim_forgets_on_read_error;
  (* The live chunk was forgotten: locator now stale, data gone. *)
  (match Chunk_store.get cs loc with
  | Error (Chunk_store.Stale_locator _) -> ()
  | _ -> Alcotest.fail "chunk should have been lost");
  Alcotest.(check bool) "fired" true (Faults.fired Faults.F5_reclaim_forgets_on_read_error > 0)

let test_f1_off_by_one_drops_page_aligned_chunk () =
  Faults.disable_all ();
  let _, _, _, cs = make () in
  (* Craft a payload whose frame length is an exact page multiple:
     frame = 10 + (1+4+klen) + 32 + plen with key "k" -> 47 + plen.
     plen = 81 gives 128 = 4 pages. *)
  let payload = String.make 80 'y' in
  let loc, _ = ok (Chunk_store.put cs ~owner:(Chunk_format.Shard "k") ~payload) in
  Alcotest.(check int) "frame is page multiple" 0 (loc.Locator.frame_len mod 32);
  Faults.enable Faults.F1_reclaim_off_by_one;
  ignore
    (ok
       (Chunk_store.reclaim cs ~extent:loc.Locator.extent ~index_basis:Dep.trivial
          ~classify:(fun _ _ -> `Live)
          ~relocate:(fun _ ~old_loc:_ ~new_loc:_ ~new_dep -> new_dep)));
  Faults.disable Faults.F1_reclaim_off_by_one;
  let st = Chunk_store.stats cs in
  Alcotest.(check int) "nothing evacuated" 0 st.Chunk_store.evacuated;
  Alcotest.(check bool) "fired" true (Faults.fired Faults.F1_reclaim_off_by_one > 0)

(* Property: random puts followed by a full-liveness reclamation keep
   every chunk readable with its exact payload; dead chunks are dropped. *)
let prop_reclaim_preserves_live =
  QCheck.Test.make ~name:"reclamation preserves live chunks" ~count:150
    QCheck.(int_bound 100_000)
    (fun seed ->
      let _, _, _, cs = make () in
      let rng = Rng.create (Int64.of_int seed) in
      (* a handful of chunks with varied sizes, some of them "dead" *)
      let chunks = ref [] in
      for i = 0 to 3 + Rng.int rng 4 do
        let payload = Bytes.to_string (Rng.bytes rng (Rng.int rng 120)) in
        let owner = Chunk_format.Shard (Printf.sprintf "k%d" i) in
        match Chunk_store.put cs ~owner ~payload with
        | Ok (loc, _) -> chunks := (owner, ref loc, payload, Rng.bool rng) :: !chunks
        | Error Chunk_store.No_space -> ()
        | Error e -> QCheck.Test.fail_reportf "put: %a" Chunk_store.pp_error e
      done;
      let classify owner loc =
        if
          List.exists
            (fun (o, l, _, live) -> live && Chunk_format.owner_equal o owner && Locator.equal !l loc)
            !chunks
        then `Live
        else `Dead
      in
      let relocate owner ~old_loc ~new_loc ~new_dep =
        List.iter
          (fun (o, l, _, _) ->
            if Chunk_format.owner_equal o owner && Locator.equal !l old_loc then l := new_loc)
          !chunks;
        new_dep
      in
      (* reclaim a random data extent that holds at least one chunk *)
      (match !chunks with
      | [] -> ()
      | (_, l0, _, _) :: _ -> (
        let extent = !l0.Locator.extent in
        match Chunk_store.reclaim cs ~extent ~index_basis:Dep.trivial ~classify ~relocate with
        | Ok _ -> ()
        | Error Chunk_store.No_space -> ()
        | Error e -> QCheck.Test.fail_reportf "reclaim: %a" Chunk_store.pp_error e));
      List.for_all
        (fun (owner, l, payload, live) ->
          if not live then true
          else
            match Chunk_store.get cs !l with
            | Ok c ->
              String.equal c.Chunk_format.payload payload
              && Chunk_format.owner_equal c.Chunk_format.owner owner
            | Error _ -> false)
        !chunks)

(* Property: chunk-level conformance against the chunk model, including
   the locator uniqueness invariant. *)
let prop_chunk_conformance =
  QCheck.Test.make ~name:"chunk store conforms to chunk model" ~count:150
    QCheck.(int_bound 100_000)
    (fun seed ->
      let _, _, _, cs = make () in
      let model = Model.Chunk_model.create () in
      let rng = Rng.create (Int64.of_int seed) in
      let live = ref [] in
      let ok = ref true in
      for i = 0 to 11 do
        if Rng.chance rng 0.7 || !live = [] then begin
          let payload = Bytes.to_string (Rng.bytes rng (Rng.int rng 100)) in
          match Chunk_store.put cs ~owner:(Chunk_format.Shard (string_of_int i)) ~payload with
          | Ok (loc, _) -> (
            match Model.Chunk_model.track model ~locator:loc ~payload with
            | Ok () -> live := loc :: !live
            | Error _ -> ok := false (* uniqueness violated *))
          | Error Chunk_store.No_space -> ()
          | Error _ -> ok := false
        end
        else begin
          let loc = Rng.pick_list rng !live in
          match Chunk_store.get cs loc, Model.Chunk_model.expected model ~locator:loc with
          | Ok c, Some expected -> if c.Chunk_format.payload <> expected then ok := false
          | Error _, _ | _, None -> ok := false
        end
      done;
      !ok)

let test_uuid_bias () =
  let _, _, _, cs = make () in
  Chunk_store.set_uuid_bias cs 1.0;
  let loc, _ = ok (Chunk_store.put cs ~owner:(Chunk_format.Shard "k") ~payload:"zz") in
  let chunk = ok (Chunk_store.get cs loc) in
  let u = Uuid.to_string chunk.Chunk_format.uuid in
  Alcotest.(check string) "uuid ends with magic" Chunk_format.magic
    (String.sub u (String.length u - 2) 2)

let () =
  Faults.disable_all ();
  Faults.reset_counters ();
  Alcotest.run "chunk"
    [
      ( "format",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "payload corruption" `Quick test_frame_detects_payload_corruption;
          Alcotest.test_case "truncation" `Quick test_frame_detects_truncation;
          Alcotest.test_case "uuid mismatch" `Quick test_frame_uuid_mismatch;
          QCheck_alcotest.to_alcotest prop_decode_total;
          QCheck_alcotest.to_alcotest prop_frame_roundtrip;
        ] );
      ( "store",
        [
          Alcotest.test_case "put/get" `Quick test_put_get;
          Alcotest.test_case "put_batch roundtrip, one append" `Quick
            test_put_batch_roundtrip_one_append;
          Alcotest.test_case "put_batch shares group dep" `Quick test_put_batch_shares_group_dep;
          Alcotest.test_case "put_batch spills across extents" `Quick
            test_put_batch_spills_across_extents;
          Alcotest.test_case "put_batch oversized rejected" `Quick
            test_put_batch_oversized_rejected;
          Alcotest.test_case "persistence needs sb flush" `Quick
            test_put_becomes_persistent_after_sb_flush;
          Alcotest.test_case "stale locator" `Quick test_stale_locator_after_reset;
          Alcotest.test_case "allocation spreads" `Quick test_allocation_moves_to_new_extent;
          Alcotest.test_case "no space" `Quick test_no_space;
          Alcotest.test_case "oversized rejected" `Quick test_oversized_chunk_rejected;
          Alcotest.test_case "uuid bias" `Quick test_uuid_bias;
          QCheck_alcotest.to_alcotest prop_chunk_conformance;
        ] );
      ( "reclamation",
        [
          Alcotest.test_case "evacuates live, drops dead" `Quick
            test_reclaim_evacuates_live_drops_dead;
          Alcotest.test_case "aborts on read error" `Quick test_reclaim_aborts_on_read_error;
          Alcotest.test_case "#5 resets despite read error" `Quick
            test_f5_reclaim_resets_despite_read_error;
          Alcotest.test_case "#1 off-by-one drops page-aligned chunk" `Quick
            test_f1_off_by_one_drops_page_aligned_chunk;
          QCheck_alcotest.to_alcotest prop_reclaim_preserves_live;
        ] );
    ]
