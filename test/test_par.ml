(* Determinism under parallelism: every Par entry point, and everything
   threaded through it (Harness.run_par, Detect, Chaos), must return
   byte-identical results for any domain count. These tests run 4 domains
   on whatever hardware CI has — oversubscription changes only wall clock,
   never results. *)

let domain_counts = [ 2; 4 ]

(* {2 Par primitives} *)

let test_sweep_matches_sequential () =
  (* An intentionally non-commutative accumulator: ordered list of indices.
     Any wrong merge order or lost/duplicated index shows up directly. *)
  let run domains =
    List.rev
      (Par.sweep ~domains ~start:3 ~count:501
         ~init:(fun () -> [])
         ~step:(fun acc i -> i :: acc)
         ~merge:(fun lo hi -> hi @ lo)
         ())
  in
  let expected = run 1 in
  Alcotest.(check (list int)) "covers the range once, in order" (List.init 501 (fun i -> i + 3)) expected;
  List.iter
    (fun d -> Alcotest.(check (list int)) (Printf.sprintf "%d domains" d) expected (run d))
    domain_counts

let test_sweep_empty_and_bounds () =
  Alcotest.(check int) "count 0 returns init" 42
    (Par.sweep ~domains:4 ~start:0 ~count:0
       ~init:(fun () -> 42)
       ~step:(fun acc _ -> acc + 1)
       ~merge:( + ) ());
  Alcotest.check_raises "negative count rejected"
    (Invalid_argument "Par: negative count") (fun () ->
      ignore
        (Par.sweep ~domains:2 ~start:0 ~count:(-1)
           ~init:(fun () -> 0)
           ~step:(fun acc _ -> acc)
           ~merge:( + ) ()))

let test_sweep_exception_propagates () =
  List.iter
    (fun domains ->
      Alcotest.check_raises "task exception re-raised" (Failure "boom") (fun () ->
        ignore
          (Par.sweep ~domains ~start:0 ~count:100
             ~init:(fun () -> 0)
             ~step:(fun acc i -> if i = 57 then failwith "boom" else acc + i)
             ~merge:( + ) ())))
    (1 :: domain_counts)

let test_search_prefix_matches_sequential () =
  (* Several hit positions, including none and the very first index. *)
  List.iter
    (fun hit ->
      let task i = (i, i * i) in
      let stop (i, _) = i = hit in
      let expected = Par.search ~domains:1 ~start:10 ~count:300 ~stop task in
      List.iter
        (fun d ->
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "hit %d, %d domains" hit d)
            expected
            (Par.search ~domains:d ~start:10 ~count:300 ~stop task))
        domain_counts)
    [ 10; 11; 137; 309; 100_000 (* never *) ]

let test_search_lowest_hit_wins () =
  (* Two hits: the returned prefix must end at the lower one even though a
     worker starting in the upper block reaches the higher hit first. *)
  let stop i = i = 40 || i = 160 in
  List.iter
    (fun d ->
      let prefix = Par.search ~domains:d ~start:0 ~count:200 ~stop (fun i -> i) in
      Alcotest.(check int) "stops at the lowest hit" 41 (List.length prefix);
      Alcotest.(check (list int)) "in order" (List.init 41 Fun.id) prefix)
    (1 :: domain_counts)

(* {2 Harness.run_par} *)

let config = Lfm.Harness.default_config
let bias = Lfm.Gen.default_bias

let check_sweep_equal msg (a : Lfm.Harness.sweep) (b : Lfm.Harness.sweep) =
  Alcotest.(check int) (msg ^ ": checked") a.Lfm.Harness.checked b.Lfm.Harness.checked;
  Alcotest.(check int) (msg ^ ": total_ops") a.Lfm.Harness.total_ops b.Lfm.Harness.total_ops;
  Alcotest.(check int) (msg ^ ": failures") a.Lfm.Harness.failures b.Lfm.Harness.failures;
  match a.Lfm.Harness.first_failure, b.Lfm.Harness.first_failure with
  | None, None -> ()
  | Some (sa, opsa, fa), Some (sb, opsb, fb) ->
    Alcotest.(check int) (msg ^ ": failing seed") sa sb;
    Alcotest.(check string)
      (msg ^ ": failing ops")
      (String.concat ";" (List.map (Format.asprintf "%a" Lfm.Op.pp) opsa))
      (String.concat ";" (List.map (Format.asprintf "%a" Lfm.Op.pp) opsb));
    Alcotest.(check string)
      (msg ^ ": failure")
      (Format.asprintf "%a" Lfm.Harness.pp_failure fa)
      (Format.asprintf "%a" Lfm.Harness.pp_failure fb)
  | _ -> Alcotest.fail (msg ^ ": first_failure presence differs")

let test_run_par_clean_sweep () =
  Faults.disable_all ();
  let run domains =
    Lfm.Harness.run_par ~domains config ~profile:Lfm.Gen.Full ~bias ~length:30 ~seed:0
      ~count:60
  in
  let seq = run 1 in
  Alcotest.(check int) "all seeds checked" 60 seq.Lfm.Harness.checked;
  Alcotest.(check int) "clean" 0 seq.Lfm.Harness.failures;
  List.iter
    (fun d -> check_sweep_equal (Printf.sprintf "%d domains" d) seq (run d))
    domain_counts

let test_run_par_finds_same_counterexample () =
  (* With #4 enabled, the hunt must stop at the same lowest failing seed —
     and the minimized counterexample derived from it must be identical —
     for every domain count. Seed/budget as in test_experiments, where #4
     is known to surface. *)
  Faults.disable_all ();
  Faults.enable Faults.F4_disk_return_loses_shards;
  Fun.protect
    ~finally:(fun () -> Faults.disable Faults.F4_disk_return_loses_shards)
    (fun () ->
      let run domains =
        Lfm.Harness.run_par ~domains ~stop_on_failure:true config ~profile:Lfm.Gen.Crash_free
          ~bias ~length:60 ~seed:5 ~count:300
      in
      let seq = run 1 in
      Alcotest.(check bool) "found" true (seq.Lfm.Harness.first_failure <> None);
      let minimized sw =
        match sw.Lfm.Harness.first_failure with
        | None -> []
        | Some (_, ops, _) ->
          let still_fails ops =
            match Lfm.Harness.run config ops with
            | Lfm.Harness.Failed _ -> true
            | Lfm.Harness.Passed -> false
          in
          fst (Lfm.Minimize.minimize ~still_fails ops)
      in
      let seq_min = minimized seq in
      Alcotest.(check bool) "minimized nonempty" true (seq_min <> []);
      List.iter
        (fun d ->
          let par = run d in
          check_sweep_equal (Printf.sprintf "%d domains" d) seq par;
          Alcotest.(check (list string))
            (Printf.sprintf "minimized identical, %d domains" d)
            (List.map (Format.asprintf "%a" Lfm.Op.pp) seq_min)
            (List.map (Format.asprintf "%a" Lfm.Op.pp) (minimized par)))
        domain_counts)

let render_obs obs = Format.asprintf "%a" Obs.pp_snapshot obs

let test_run_par_obs_merge () =
  Faults.disable_all ();
  let run domains =
    let obs = Obs.create ~scope:"sweep" () in
    let sw =
      Lfm.Harness.run_par ~obs ~domains config ~profile:Lfm.Gen.Full ~bias ~length:30
        ~seed:100 ~count:40
    in
    (sw, render_obs obs)
  in
  let seq, seq_obs = run 1 in
  Alcotest.(check bool) "metrics aggregated" true (String.length seq_obs > 0);
  List.iter
    (fun d ->
      let par, par_obs = run d in
      check_sweep_equal (Printf.sprintf "%d domains" d) seq par;
      Alcotest.(check string)
        (Printf.sprintf "merged Obs snapshot identical, %d domains" d)
        seq_obs par_obs)
    domain_counts

let test_run_par_obs_with_stop_rejected () =
  Alcotest.(check bool) "Invalid_argument" true
    (match
       Lfm.Harness.run_par ~obs:(Obs.create ()) ~stop_on_failure:true config
         ~profile:Lfm.Gen.Full ~bias ~length:10 ~seed:0 ~count:5
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* {2 Detect and Chaos} *)

let test_detect_domains_identical () =
  let run domains =
    Lfm.Detect.detect ~domains ~max_sequences:300 ~minimize:true ~seed:5
      Faults.F4_disk_return_loses_shards
  in
  let seq = run 1 in
  Alcotest.(check bool) "detects" true seq.Lfm.Detect.found;
  List.iter
    (fun d ->
      let par = run d in
      Alcotest.(check bool) "found" seq.Lfm.Detect.found par.Lfm.Detect.found;
      Alcotest.(check int) "sequences" seq.Lfm.Detect.sequences par.Lfm.Detect.sequences;
      Alcotest.(check int) "total_ops" seq.Lfm.Detect.total_ops par.Lfm.Detect.total_ops;
      Alcotest.(check (option (list string)))
        "minimized ops identical"
        (Option.map (List.map (Format.asprintf "%a" Lfm.Op.pp)) seq.Lfm.Detect.minimized_ops)
        (Option.map (List.map (Format.asprintf "%a" Lfm.Op.pp)) par.Lfm.Detect.minimized_ops))
    domain_counts

let test_chaos_domains_identical () =
  let render (s : Experiments.Chaos.summary) =
    Printf.sprintf "%d/%d ops %d faults %d retries %d failovers %d rr %d bo %d qa %d pw %d failed %d"
      s.Experiments.Chaos.clean s.Experiments.Chaos.campaigns s.Experiments.Chaos.total_ops
      s.Experiments.Chaos.total_faults s.Experiments.Chaos.total_retries
      s.Experiments.Chaos.total_failovers s.Experiments.Chaos.total_read_repairs
      s.Experiments.Chaos.total_breaker_opens s.Experiments.Chaos.total_quorum_acks
      s.Experiments.Chaos.total_partial_writes
      (List.length s.Experiments.Chaos.failed)
  in
  let seq = render (Experiments.Chaos.run ~domains:1 ~campaigns:8 ~length:30 ~seed:0 ()) in
  List.iter
    (fun d ->
      Alcotest.(check string)
        (Printf.sprintf "summary identical, %d domains" d)
        seq
        (render (Experiments.Chaos.run ~domains:d ~campaigns:8 ~length:30 ~seed:0 ())))
    domain_counts;
  let teeth_seq = Experiments.Chaos.check_teeth ~domains:1 ~campaigns:4 ~length:30 ~seed:0 () in
  Alcotest.(check bool) "teeth" true (teeth_seq > 0);
  List.iter
    (fun d ->
      Alcotest.(check int)
        (Printf.sprintf "teeth identical, %d domains" d)
        teeth_seq
        (Experiments.Chaos.check_teeth ~domains:d ~campaigns:4 ~length:30 ~seed:0 ()))
    domain_counts

let () =
  Alcotest.run "par"
    [
      ( "primitives",
        [
          Alcotest.test_case "sweep = sequential fold" `Quick test_sweep_matches_sequential;
          Alcotest.test_case "sweep bounds" `Quick test_sweep_empty_and_bounds;
          Alcotest.test_case "sweep exception" `Quick test_sweep_exception_propagates;
          Alcotest.test_case "search prefix" `Quick test_search_prefix_matches_sequential;
          Alcotest.test_case "search lowest hit" `Quick test_search_lowest_hit_wins;
        ] );
      ( "harness",
        [
          Alcotest.test_case "clean sweep" `Quick test_run_par_clean_sweep;
          Alcotest.test_case "same counterexample" `Quick test_run_par_finds_same_counterexample;
          Alcotest.test_case "obs merge" `Quick test_run_par_obs_merge;
          Alcotest.test_case "obs+stop rejected" `Quick test_run_par_obs_with_stop_rejected;
        ] );
      ( "checkers",
        [
          Alcotest.test_case "detect identical" `Quick test_detect_domains_identical;
          Alcotest.test_case "chaos identical" `Quick test_chaos_domains_identical;
        ] );
    ]
