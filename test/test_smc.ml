(* Tests for the stateless model checker: classic races, deadlocks,
   exhaustive DFS soundness, replay, and the linearizability checker. *)

(* Two threads increment a counter with a non-atomic read-modify-write;
   some interleaving loses an update. *)
let racy_counter () =
  let c = Smc.Cell.make 0 in
  let body () =
    let v = Smc.Cell.get c in
    Smc.Cell.set c (v + 1)
  in
  Smc.spawn body;
  Smc.spawn body;
  ()

let racy_counter_checked () =
  let c = Smc.Cell.make 0 in
  let done_ = Smc.Cell.make 0 in
  let body () =
    let v = Smc.Cell.get c in
    Smc.Cell.set c (v + 1);
    ignore (Smc.Cell.update done_ (fun d -> d + 1))
  in
  Smc.spawn body;
  Smc.spawn body;
  Smc.wait_until (fun () -> Smc.Cell.peek done_ = 2);
  if Smc.Cell.get c <> 2 then failwith "lost update"

let safe_counter_checked () =
  let c = Smc.Cell.make 0 in
  let done_ = Smc.Cell.make 0 in
  let m = Smc.Mutex.create () in
  let body () =
    Smc.Mutex.with_lock m (fun () ->
        let v = Smc.Cell.get c in
        Smc.Cell.set c (v + 1));
    ignore (Smc.Cell.update done_ (fun d -> d + 1))
  in
  Smc.spawn body;
  Smc.spawn body;
  Smc.wait_until (fun () -> Smc.Cell.peek done_ = 2);
  if Smc.Cell.get c <> 2 then failwith "lost update"

let test_dfs_finds_lost_update () =
  let o = Smc.explore (Smc.Dfs { max_schedules = 10_000 }) racy_counter_checked in
  match o.Smc.violation with
  | Some { kind = Smc.Assertion "lost update"; _ } -> ()
  | _ -> Alcotest.failf "expected lost update, got %a" Smc.pp_outcome o

let test_dfs_exhausts_safe_counter () =
  let o = Smc.explore (Smc.Dfs { max_schedules = 100_000 }) safe_counter_checked in
  Alcotest.(check bool) "no violation" true (o.Smc.violation = None);
  Alcotest.(check bool) "exhaustive" true o.Smc.exhausted;
  Alcotest.(check bool) "explored multiple schedules" true (o.Smc.schedules_run > 10)

let test_dfs_no_violation_without_assert () =
  let o = Smc.explore (Smc.Dfs { max_schedules = 10_000 }) racy_counter in
  Alcotest.(check bool) "no assertion, no violation" true (o.Smc.violation = None)

let test_random_finds_lost_update () =
  let o = Smc.explore (Smc.Random_walk { seed = 7; schedules = 2_000 }) racy_counter_checked in
  match o.Smc.violation with
  | Some { kind = Smc.Assertion _; _ } -> ()
  | _ -> Alcotest.failf "expected violation, got %a" Smc.pp_outcome o

let test_pct_finds_lost_update () =
  let o = Smc.explore (Smc.Pct { seed = 7; schedules = 2_000; depth = 3 }) racy_counter_checked in
  match o.Smc.violation with
  | Some { kind = Smc.Assertion _; _ } -> ()
  | _ -> Alcotest.failf "expected violation, got %a" Smc.pp_outcome o

let deadlock_body () =
  let a = Smc.Mutex.create () and b = Smc.Mutex.create () in
  Smc.spawn (fun () ->
      Smc.Mutex.lock a;
      Smc.yield ();
      Smc.Mutex.lock b;
      Smc.Mutex.unlock b;
      Smc.Mutex.unlock a);
  Smc.spawn (fun () ->
      Smc.Mutex.lock b;
      Smc.yield ();
      Smc.Mutex.lock a;
      Smc.Mutex.unlock a;
      Smc.Mutex.unlock b)

let test_dfs_finds_deadlock () =
  let o = Smc.explore (Smc.Dfs { max_schedules = 100_000 }) deadlock_body in
  match o.Smc.violation with
  | Some { kind = Smc.Deadlock _; _ } -> ()
  | _ -> Alcotest.failf "expected deadlock, got %a" Smc.pp_outcome o

let test_replay_reproduces () =
  let o = Smc.explore (Smc.Dfs { max_schedules = 10_000 }) racy_counter_checked in
  match o.Smc.violation with
  | Some v -> (
    match Smc.replay racy_counter_checked v.Smc.schedule with
    | Some v' ->
      Alcotest.(check bool) "same kind" true (v'.Smc.kind = v.Smc.kind)
    | None -> Alcotest.fail "replay did not reproduce")
  | None -> Alcotest.fail "no violation to replay"

let test_semaphore () =
  (* Two permits, three acquirers that never release: the third blocks and
     since nobody releases, deadlock. *)
  let body () =
    let s = Smc.Semaphore.create 2 in
    let spawn_acquire () = Smc.spawn (fun () -> Smc.Semaphore.acquire s) in
    spawn_acquire ();
    spawn_acquire ();
    spawn_acquire ()
  in
  let o = Smc.explore (Smc.Dfs { max_schedules = 10_000 }) body in
  match o.Smc.violation with
  | Some { kind = Smc.Deadlock _; _ } -> ()
  | _ -> Alcotest.failf "expected deadlock, got %a" Smc.pp_outcome o

let test_semaphore_release_unblocks () =
  let body () =
    let s = Smc.Semaphore.create 1 in
    let done_ = Smc.Cell.make 0 in
    Smc.spawn (fun () ->
        Smc.Semaphore.acquire s;
        Smc.Semaphore.release s;
        ignore (Smc.Cell.update done_ (fun d -> d + 1)));
    Smc.spawn (fun () ->
        Smc.Semaphore.acquire s;
        Smc.Semaphore.release s;
        ignore (Smc.Cell.update done_ (fun d -> d + 1)))
  in
  let o = Smc.explore (Smc.Dfs { max_schedules = 100_000 }) body in
  Alcotest.(check bool) "no violation" true (o.Smc.violation = None);
  Alcotest.(check bool) "exhaustive" true o.Smc.exhausted

(* [Semaphore.release] is a scheduling point: DFS must explore a waiter
   waking between the release and the releaser's next step. Pinning the
   exhaustive schedule count for the acquire/release body above guards
   that — before release yielded, the same body exhausted at only 224
   schedules, silently skipping every such interleaving. *)
let test_semaphore_release_schedule_count () =
  let body () =
    let s = Smc.Semaphore.create 1 in
    let done_ = Smc.Cell.make 0 in
    let worker () =
      Smc.Semaphore.acquire s;
      Smc.Semaphore.release s;
      ignore (Smc.Cell.update done_ (fun d -> d + 1))
    in
    Smc.spawn worker;
    Smc.spawn worker
  in
  let o = Smc.explore (Smc.Dfs { max_schedules = 1_000_000 }) body in
  Alcotest.(check bool) "no violation" true (o.Smc.violation = None);
  Alcotest.(check bool) "exhaustive" true o.Smc.exhausted;
  Alcotest.(check int) "schedule count" 1065 o.Smc.schedules_run

let test_mutex_misuse_detected () =
  let o =
    Smc.explore
      (Smc.Dfs { max_schedules = 100 })
      (fun () ->
        let m = Smc.Mutex.create () in
        Smc.Mutex.unlock m)
  in
  match o.Smc.violation with
  | Some { kind = Smc.Assertion _; _ } -> ()
  | _ -> Alcotest.fail "expected assertion"

let test_primitives_work_outside_exploration () =
  let c = Smc.Cell.make 1 in
  Smc.Cell.set c 2;
  Alcotest.(check int) "cell" 2 (Smc.Cell.get c);
  let m = Smc.Mutex.create () in
  Smc.Mutex.with_lock m (fun () -> ());
  let hit = ref false in
  Smc.spawn (fun () -> hit := true);
  Alcotest.(check bool) "spawn runs inline" true !hit

let test_dfs_budget_respected () =
  let o = Smc.explore (Smc.Dfs { max_schedules = 5 }) racy_counter_checked in
  Alcotest.(check bool) "at most budget schedules" true (o.Smc.schedules_run <= 5);
  Alcotest.(check bool) "not exhaustive at tiny budget" false o.Smc.exhausted

let test_single_thread_no_choices () =
  (* A sequential body has exactly one schedule. *)
  let o =
    Smc.explore
      (Smc.Dfs { max_schedules = 1000 })
      (fun () ->
        let c = Smc.Cell.make 0 in
        Smc.Cell.set c 1;
        Smc.Cell.set c (Smc.Cell.get c + 1);
        if Smc.Cell.get c <> 2 then failwith "sequential arithmetic broke")
  in
  Alcotest.(check bool) "no violation" true (o.Smc.violation = None);
  Alcotest.(check int) "one schedule" 1 o.Smc.schedules_run;
  Alcotest.(check bool) "exhaustive" true o.Smc.exhausted

let test_thread_ids_distinct () =
  let o =
    Smc.explore
      (Smc.Dfs { max_schedules = 10_000 })
      (fun () ->
        let ids = Smc.Cell.make [] in
        let record () = ignore (Smc.Cell.update ids (fun l -> Smc.thread_id () :: l)) in
        Smc.spawn record;
        Smc.spawn record;
        Smc.wait_until (fun () -> List.length (Smc.Cell.peek ids) = 2);
        let l = Smc.Cell.get ids in
        if List.sort_uniq compare l <> List.sort compare l then failwith "duplicate thread id";
        if List.mem (Smc.thread_id ()) l then failwith "child shares main's id")
  in
  Alcotest.(check bool) "no violation" true (o.Smc.violation = None)

let test_exception_reported () =
  let o =
    Smc.explore (Smc.Dfs { max_schedules = 10 }) (fun () -> raise Exit)
  in
  match o.Smc.violation with
  | Some { kind = Smc.Exception _; _ } -> ()
  | _ -> Alcotest.fail "expected exception violation"

(* Determinism: replaying any recorded schedule of a failing exploration
   reproduces a violation of the same kind, repeatedly. *)
let prop_replay_deterministic =
  QCheck.Test.make ~name:"replay is deterministic" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let o =
        Smc.explore (Smc.Random_walk { seed; schedules = 500 }) racy_counter_checked
      in
      match o.Smc.violation with
      | None -> true
      | Some v -> (
        match
          ( Smc.replay racy_counter_checked v.Smc.schedule,
            Smc.replay racy_counter_checked v.Smc.schedule )
        with
        | Some a, Some b -> a.Smc.kind = v.Smc.kind && b.Smc.kind = v.Smc.kind
        | _ -> false))

(* {2 Linearizability} *)

type counter_op = Incr | Read

let counter_apply state = function
  | Incr -> (state + 1, state)  (* fetch-and-add returns old value *)
  | Read -> (state, state)

let test_linearizable_history_accepted () =
  (* Sequential: incr()=0, incr()=1, read()=2. *)
  let h =
    [
      { Linearize.thread = 1; op = Incr; result = 0; invoked = 0; returned = 1 };
      { Linearize.thread = 2; op = Incr; result = 1; invoked = 2; returned = 3 };
      { Linearize.thread = 1; op = Read; result = 2; invoked = 4; returned = 5 };
    ]
  in
  Alcotest.(check bool) "linearizable" true
    (Linearize.check ~init:0 ~apply:counter_apply ~equal_res:( = ) h)

let test_overlapping_history_accepted () =
  (* Two overlapping increments may linearize in either order. *)
  let h =
    [
      { Linearize.thread = 1; op = Incr; result = 1; invoked = 0; returned = 3 };
      { Linearize.thread = 2; op = Incr; result = 0; invoked = 1; returned = 2 };
    ]
  in
  Alcotest.(check bool) "linearizable" true
    (Linearize.check ~init:0 ~apply:counter_apply ~equal_res:( = ) h)

let test_lost_update_history_rejected () =
  (* Both increments return 0: no sequential counter does that. *)
  let h =
    [
      { Linearize.thread = 1; op = Incr; result = 0; invoked = 0; returned = 2 };
      { Linearize.thread = 2; op = Incr; result = 0; invoked = 1; returned = 3 };
    ]
  in
  Alcotest.(check bool) "not linearizable" false
    (Linearize.check ~init:0 ~apply:counter_apply ~equal_res:( = ) h)

let test_realtime_order_respected () =
  (* read()=0 strictly after incr()=0 completed is not linearizable. *)
  let h =
    [
      { Linearize.thread = 1; op = Incr; result = 0; invoked = 0; returned = 1 };
      { Linearize.thread = 2; op = Read; result = 0; invoked = 2; returned = 3 };
    ]
  in
  Alcotest.(check bool) "stale read rejected" false
    (Linearize.check ~init:0 ~apply:counter_apply ~equal_res:( = ) h)

let test_recorder_under_smc () =
  (* A mutex-protected fetch-and-add is linearizable under every
     interleaving. *)
  let body () =
    let rec_ = Linearize.Recorder.create () in
    let c = Smc.Cell.make 0 in
    let m = Smc.Mutex.create () in
    let done_ = Smc.Cell.make 0 in
    let incr_thread () =
      ignore
        (Linearize.Recorder.record rec_ Incr (fun () ->
             Smc.Mutex.with_lock m (fun () ->
                 let v = Smc.Cell.get c in
                 Smc.Cell.set c (v + 1);
                 v)));
      ignore (Smc.Cell.update done_ (fun d -> d + 1))
    in
    Smc.spawn incr_thread;
    Smc.spawn incr_thread;
    Smc.wait_until (fun () -> Smc.Cell.peek done_ = 2);
    if not (Linearize.check ~init:0 ~apply:counter_apply ~equal_res:( = )
              (Linearize.Recorder.history rec_))
    then failwith "not linearizable"
  in
  let o = Smc.explore (Smc.Dfs { max_schedules = 200_000 }) body in
  Alcotest.(check bool) "all interleavings linearizable" true (o.Smc.violation = None)

let test_recorder_detects_racy_faa () =
  (* Unprotected fetch-and-add: some interleaving yields a non-linearizable
     history. *)
  let body () =
    let rec_ = Linearize.Recorder.create () in
    let c = Smc.Cell.make 0 in
    let done_ = Smc.Cell.make 0 in
    let incr_thread () =
      ignore
        (Linearize.Recorder.record rec_ Incr (fun () ->
             let v = Smc.Cell.get c in
             Smc.Cell.set c (v + 1);
             v));
      ignore (Smc.Cell.update done_ (fun d -> d + 1))
    in
    Smc.spawn incr_thread;
    Smc.spawn incr_thread;
    Smc.wait_until (fun () -> Smc.Cell.peek done_ = 2);
    if not (Linearize.check ~init:0 ~apply:counter_apply ~equal_res:( = )
              (Linearize.Recorder.history rec_))
    then failwith "not linearizable"
  in
  let o = Smc.explore (Smc.Dfs { max_schedules = 200_000 }) body in
  match o.Smc.violation with
  | Some { kind = Smc.Assertion "not linearizable"; _ } -> ()
  | _ -> Alcotest.failf "expected non-linearizable history, got %a" Smc.pp_outcome o

let () =
  Alcotest.run "smc"
    [
      ( "exploration",
        [
          Alcotest.test_case "dfs finds lost update" `Quick test_dfs_finds_lost_update;
          Alcotest.test_case "dfs exhausts safe counter" `Quick test_dfs_exhausts_safe_counter;
          Alcotest.test_case "no assert, no violation" `Quick test_dfs_no_violation_without_assert;
          Alcotest.test_case "random finds lost update" `Quick test_random_finds_lost_update;
          Alcotest.test_case "pct finds lost update" `Quick test_pct_finds_lost_update;
          Alcotest.test_case "dfs finds deadlock" `Quick test_dfs_finds_deadlock;
          Alcotest.test_case "replay reproduces" `Quick test_replay_reproduces;
          Alcotest.test_case "dfs budget respected" `Quick test_dfs_budget_respected;
          Alcotest.test_case "single thread, one schedule" `Quick test_single_thread_no_choices;
          Alcotest.test_case "thread ids distinct" `Quick test_thread_ids_distinct;
          Alcotest.test_case "exception reported" `Quick test_exception_reported;
          QCheck_alcotest.to_alcotest prop_replay_deterministic;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "semaphore exhaustion deadlock" `Quick test_semaphore;
          Alcotest.test_case "semaphore release unblocks" `Quick test_semaphore_release_unblocks;
          Alcotest.test_case "semaphore release is a scheduling point" `Quick
            test_semaphore_release_schedule_count;
          Alcotest.test_case "mutex misuse" `Quick test_mutex_misuse_detected;
          Alcotest.test_case "works outside exploration" `Quick
            test_primitives_work_outside_exploration;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "linearizable accepted" `Quick test_linearizable_history_accepted;
          Alcotest.test_case "overlapping accepted" `Quick test_overlapping_history_accepted;
          Alcotest.test_case "lost update rejected" `Quick test_lost_update_history_rejected;
          Alcotest.test_case "realtime order" `Quick test_realtime_order_respected;
          Alcotest.test_case "recorder: locked faa linearizable" `Quick test_recorder_under_smc;
          Alcotest.test_case "recorder: racy faa caught" `Quick test_recorder_detects_racy_faa;
        ] );
    ]
