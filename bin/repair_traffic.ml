(* Experiment E11: repair traffic after a node crash vs a node loss —
   the section 2.2 motivation for crash consistency. *)

open Cmdliner

let run shards bytes seed =
  Experiments.Repair_traffic.print
    (Experiments.Repair_traffic.run ~shards ~shard_bytes:bytes ~seed ());
  0

let shards = Arg.(value & opt int 120 & info [ "shards" ] ~doc:"Shards to populate.")
let bytes = Arg.(value & opt int 4096 & info [ "bytes" ] ~doc:"Shard size in bytes.")
let seed = Arg.(value & opt int 11000 & info [ "seed" ] ~doc:"Base random seed.")

let cmd =
  Cmd.v
    (Cmd.info "repair_traffic" ~doc:"Reproduce the crash-vs-loss repair traffic comparison")
    Term.(const run $ shards $ bytes $ seed)

let () = exit (Cmd.eval' cmd)
