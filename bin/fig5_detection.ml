(* Regenerate the paper's Figure 5 (experiment E1): seed each cataloged
   defect and demonstrate that the assigned checker detects it. *)

open Cmdliner

let run quick seed minimize =
  let budget =
    if quick then { Experiments.Fig5.quick_budget with Experiments.Fig5.seed }
    else { Experiments.Fig5.default_budget with Experiments.Fig5.seed; minimize }
  in
  Experiments.Fig5.print (Experiments.Fig5.run budget);
  0

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Small budgets (issue #10 may not be found).")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base random seed.")

let minimize =
  Arg.(value & opt bool true & info [ "minimize" ] ~doc:"Minimize counterexamples.")

let cmd =
  Cmd.v
    (Cmd.info "fig5_detection"
       ~doc:"Reproduce Figure 5: issues prevented by the validation effort")
    Term.(const run $ quick $ seed $ minimize)

let () = exit (Cmd.eval' cmd)
