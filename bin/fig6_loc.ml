(* Regenerate the paper's Figure 6 (experiments E2/E5): lines of code by
   category and the validation-effort ratios of section 8.2. *)

open Cmdliner

let run root =
  Experiments.Fig6.print (Experiments.Fig6.run ~root ());
  0

let root =
  Arg.(value & opt string "." & info [ "root" ] ~doc:"Repository root to scan.")

let cmd =
  Cmd.v
    (Cmd.info "fig6_loc" ~doc:"Reproduce Figure 6: lines of code per artifact")
    Term.(const run $ root)

let () = exit (Cmd.eval' cmd)
