(* Static analysis gate: scan lib/ bin/ bench/ with [Linter], print every
   finding, exit 1 when any survive the waiver file. CI runs this on every
   push; [--dynamic-graph] feeds the edge export of a
   [validate --shared --lint-graph] run into the static/dynamic
   cross-check. *)

let find_root () =
  let rec go dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else go parent
  in
  go (Sys.getcwd ())

let run root waivers dynamic_graph quiet =
  let root =
    match root with
    | Some r -> r
    | None -> (
      match find_root () with
      | Some r -> r
      | None ->
        prerr_endline "lint: no dune-project above the current directory; pass --root";
        exit 2)
  in
  (match dynamic_graph with
  | Some p when not (Sys.file_exists p) ->
    Printf.eprintf "lint: dynamic graph file %s does not exist\n" p;
    exit 2
  | _ -> ());
  let findings, report, _stale =
    Linter.run ~root ?waivers_path:waivers ?dynamic_graph_path:dynamic_graph ()
  in
  if not quiet then begin
    Printf.printf "lint: %d files, %d functions, %d static lock edges, %d metrics, %d metric refs\n"
      report.Linter.files_scanned report.Linter.functions
      (List.length report.Linter.static_edges)
      report.Linter.metrics_registered report.Linter.metric_refs;
    List.iter
      (fun ((a, b), why) -> Printf.printf "lint: static lock edge %s -> %s  [%s]\n" a b why)
      report.Linter.edge_sources;
    (match dynamic_graph with
    | Some _ ->
      List.iter
        (fun (a, b) ->
          Printf.printf "lint: static-only edge %s -> %s (no harness exercised it)\n" a b)
        report.Linter.static_only_edges
    | None -> ())
  end;
  List.iter (fun f -> Format.printf "%a@." Linter.pp_finding f) findings;
  if findings = [] then begin
    if not quiet then print_endline "lint: clean";
    exit 0
  end
  else begin
    Printf.printf "lint: %d finding(s)\n" (List.length findings);
    exit 1
  end

open Cmdliner

let root =
  Arg.(
    value
    & opt (some string) None
    & info [ "root" ] ~docv:"DIR" ~doc:"Repository root (default: nearest dune-project).")

let waivers =
  Arg.(
    value
    & opt (some string) None
    & info [ "waivers" ] ~docv:"FILE"
        ~doc:"Waiver file (default: \\$(b,ROOT/lint/waivers) when present).")

let dynamic_graph =
  Arg.(
    value
    & opt (some string) None
    & info [ "dynamic-graph" ] ~docv:"FILE"
        ~doc:
          "Lock-order edges exported by $(b,validate --shared --lint-graph FILE); every \
           dynamic edge must appear in the static graph.")

let quiet =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Print findings only, no summary.")

let cmd =
  let doc = "static concurrency & determinism analyzer" in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(const run $ root $ waivers $ dynamic_graph $ quiet)

let () = exit (Cmd.eval cmd)
