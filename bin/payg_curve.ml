(* Experiment E6: detection probability as a function of the sequence
   budget (pay-as-you-go scaling). *)

open Cmdliner

let run domains trials seed =
  Experiments.Payg.print (Experiments.Payg.run ~domains ~trials ~seed ());
  0

let domains =
  Arg.(
    value & opt int 1
    & info [ "domains" ]
        ~doc:
          "Shard each hunt across $(docv) OCaml domains (lib/par). Results are \
           byte-identical to --domains 1.")

let trials = Arg.(value & opt int 20 & info [ "trials" ] ~doc:"Independent hunts per fault.")
let seed = Arg.(value & opt int 52000 & info [ "seed" ] ~doc:"Base random seed.")

let cmd =
  Cmd.v
    (Cmd.info "payg_curve" ~doc:"Reproduce the pay-as-you-go detection curves")
    Term.(const run $ domains $ trials $ seed)

let () = exit (Cmd.eval' cmd)
