(* Experiment E7: quantify the argument-selection biases of section 4.2. *)

open Cmdliner

let run domains budget trials seed =
  Experiments.Bias_ablation.print
    (Experiments.Bias_ablation.run ~domains ~max_sequences:budget ~trials ~seed ());
  0

let domains =
  Arg.(
    value & opt int 1
    & info [ "domains" ]
        ~doc:
          "Shard each hunt across $(docv) OCaml domains (lib/par). Results are \
           byte-identical to --domains 1.")

let budget =
  Arg.(value & opt int 4000 & info [ "budget" ] ~doc:"Sequence budget per ablation arm.")

let trials = Arg.(value & opt int 8 & info [ "trials" ] ~doc:"Hunts per ablation arm.")
let seed = Arg.(value & opt int 90000 & info [ "seed" ] ~doc:"Base random seed.")

let cmd =
  Cmd.v
    (Cmd.info "bias_ablation" ~doc:"Reproduce the argument-bias ablation")
    Term.(const run $ domains $ budget $ trials $ seed)

let () = exit (Cmd.eval' cmd)
