(* The pre-deployment validation run (paper section 4.2: "we routinely run
   tens of millions of random test sequences before every ShardStore
   deployment"): conformance checking across every profile, scaled by a
   sequence budget. Exit status 1 if any check fails. *)

open Cmdliner

let expected_coverage =
  [
    "cache.hit"; "cache.miss"; "cache.eviction"; "chunk.get.stale_locator";
    "index.get.memtable"; "index.get.run"; "index.run_written"; "index.compact";
    "reclaim.scan.valid_frame"; "reclaim.scan.invalid_frame"; "reclaim.evacuated";
    "reclaim.dropped"; "crash.torn_append"; "superblock.record";
    "superblock.free_claim_withheld"; "store.put.gc_fallback";
  ]

(* Replay one representative mixed sequence and report the unified metrics
   registry it produced — the per-run view that complements the global
   coverage table below. *)
let metrics_summary config ~bias ~length ~seed metrics_out =
  let rng = Util.Rng.create (Int64.of_int seed) in
  let ops =
    Lfm.Gen.sequence ~rng ~bias ~profile:Lfm.Gen.Full
      ~page_size:config.Lfm.Harness.store_config.Lfm.Harness.S.disk.Disk.page_size
      ~extent_count:config.Lfm.Harness.store_config.Lfm.Harness.S.disk.Disk.extent_count
      ~length
  in
  let store = Lfm.Harness.replay config ops in
  let obs = Lfm.Harness.S.obs store in
  Format.printf "@.metrics (one %d-op full-profile sequence):@.%a@." length Obs.pp_snapshot obs;
  match metrics_out with
  | None -> true
  | Some path -> (
    match open_out path with
    | oc ->
      output_string oc (Obs.to_jsonl obs);
      close_out oc;
      Printf.printf "metrics written to %s\n" path;
      true
    | exception Sys_error msg ->
      Printf.eprintf "validate: cannot write metrics: %s\n" msg;
      false)

(* [--sanitize]: run the dynamic-analysis detectors over known-clean
   workloads. Two sweeps: (1) the vector-clock race detector plus
   lock-order analysis over every Fig. 5 concurrency harness with its
   fault disabled — any Race violation or acquisition-graph cycle is a
   finding; (2) the page-lifecycle shadow over a put/flush/reclaim
   workload on a real stack, ending with a leaked-extent audit — any
   shadow report is a finding. Exit 1 on findings, so CI can gate on a
   sanitizer-clean tree. *)
let sanitize_run ~seed =
  Faults.disable_all ();
  let failures = ref 0 in
  let cfg = Sanitize.default in
  Printf.printf "sanitize: races + lock order over the clean Fig. 5 harnesses\n";
  List.iter
    (fun (name, fault) ->
      let o =
        Conc.Conc_detect.check_correct ~sanitize:cfg (Smc.Dfs { max_schedules = 20_000 }) fault
      in
      match (o.Smc.violation, o.Smc.lock_cycles) with
      | None, [] ->
        Printf.printf "  %-26s clean: %d schedules%s\n" name o.Smc.schedules_run
          (if o.Smc.exhausted then " (exhaustive)" else "")
      | _ ->
        incr failures;
        Format.printf "  %-26s %a@." name Smc.pp_outcome o)
    [
      ("#11 locator publication", Faults.F11_locator_race);
      ("#12 buffer pool", Faults.F12_buffer_pool_deadlock);
      ("#13 shard list/remove", Faults.F13_list_remove_race);
      ("#14 compaction/reclaim", Faults.F14_compaction_reclaim_race);
      ("#16 bulk create/remove", Faults.F16_bulk_create_remove_race);
    ];
  Printf.printf "sanitize: page-lifecycle shadow over put/flush/reclaim workloads\n";
  List.iter
    (fun seed ->
      let config = { Disk.extent_count = 8; pages_per_extent = 8; page_size = 32 } in
      let shadow =
        Sanitize.Page_shadow.create ~extent_count:config.Disk.extent_count
          ~pages_per_extent:config.Disk.pages_per_extent ~page_size:config.Disk.page_size ()
      in
      let disk = Disk.create ~shadow config in
      let sched = Io_sched.create ~seed:(Int64.of_int seed) disk in
      let cache = Cache.create sched in
      let sb = Superblock.create sched ~extents:(0, 1) ~reserved:[ 0; 1 ] in
      let rng = Util.Rng.create (Int64.of_int (seed + 1)) in
      let cs = Chunk.Chunk_store.create sched ~cache ~superblock:sb ~rng in
      let live : (string, Chunk.Locator.t) Hashtbl.t = Hashtbl.create 16 in
      let fail msg =
        incr failures;
        Printf.printf "  seed %-4d FAILED: %s\n" seed msg
      in
      let put key =
        match Chunk.Chunk_store.put cs ~owner:(Chunk.Chunk_format.Shard key) ~payload:key with
        | Ok (loc, _) -> Hashtbl.replace live key loc
        | Error e -> fail (Format.asprintf "put %s: %a" key Chunk.Chunk_store.pp_error e)
      in
      for i = 0 to 9 do
        put (Printf.sprintf "k%d" i)
      done;
      (match Superblock.flush sb with Ok _ -> () | Error _ -> fail "superblock flush");
      (match Io_sched.flush sched with Ok () -> () | Error _ -> fail "flush");
      (* Reclaim every extent holding chunks, evacuating all of them. *)
      let extents =
        Util.Tbl.fold_sorted
          (fun _ l acc -> if List.mem l.Chunk.Locator.extent acc then acc else l.Chunk.Locator.extent :: acc)
          live []
      in
      List.iter
        (fun extent ->
          match
            Chunk.Chunk_store.reclaim cs ~extent ~index_basis:Dep.trivial
              ~classify:(fun _ _ -> `Live)
              ~relocate:(fun owner ~old_loc:_ ~new_loc ~new_dep ->
                (match owner with
                | Chunk.Chunk_format.Shard key -> Hashtbl.replace live key new_loc
                | _ -> ());
                new_dep)
          with
          | Ok _ -> ()
          | Error e -> fail (Format.asprintf "reclaim %d: %a" extent Chunk.Chunk_store.pp_error e))
        extents;
      (match Superblock.flush sb with Ok _ -> () | Error _ -> fail "superblock flush");
      (match Io_sched.flush sched with Ok () -> () | Error _ -> fail "flush");
      (* Every get must still resolve; the shadow checks every read. *)
      Util.Tbl.iter_sorted
        (fun key loc ->
          match Chunk.Chunk_store.get cs loc with
          | Ok c when c.Chunk.Chunk_format.payload = key -> ()
          | Ok _ -> fail (Printf.sprintf "get %s: wrong payload" key)
          | Error e -> fail (Format.asprintf "get %s: %a" key Chunk.Chunk_store.pp_error e))
        live;
      let in_use extent =
        Util.Tbl.fold_sorted (fun _ l acc -> acc || l.Chunk.Locator.extent = extent) live false
      in
      let leaks = Chunk.Chunk_store.close cs ~in_use in
      List.iter
        (fun (extent, pages) ->
          incr failures;
          Printf.printf "  seed %-4d LEAK: extent %d, %d pages\n" seed extent pages)
        leaks;
      let reports = Sanitize.Page_shadow.reports shadow in
      List.iter
        (fun r ->
          incr failures;
          Format.printf "  seed %-4d SHADOW: %a@." seed Sanitize.Page_shadow.pp_report r)
        reports;
      if leaks = [] && reports = [] then Printf.printf "  seed %-4d clean (shadow quiet)\n" seed)
    [ seed; seed + 1; seed + 2 ];
  if !failures = 0 then begin
    Printf.printf "sanitizers clean\n";
    0
  end
  else begin
    Printf.printf "sanitizers reported %d finding(s)\n" !failures;
    1
  end

(* [--chaos]: the E13 chaos campaign over the fleet's fault-tolerant
   request plane. Three gates, any of which fails the run: (1) every
   campaign must be clean — no acknowledged write may be lost under
   randomized faults, crashes and node losses; (2) the request-plane
   coverage counters must all have fired (a silent code path is a blind
   spot); (3) the checker must still have teeth — with fault #18 (quorum
   ack without durable flush) enabled it must catch violations. *)
let chaos_expected_coverage =
  [
    "fleet.retry"; "fleet.breaker_open"; "fleet.quorum_ack"; "fleet.read_repair";
    "fleet.partial_write";
  ]

let chaos_run ~domains ~campaigns ~length ~seed =
  Faults.disable_all ();
  Util.Coverage.reset ();
  let summary = Experiments.Chaos.run ~domains ~campaigns ~length ~seed () in
  Experiments.Chaos.print summary;
  let blind = Util.Coverage.blind_spots ~expected:chaos_expected_coverage () in
  (match blind with
  | [] ->
    Printf.printf "\ncoverage: all %d request-plane paths exercised\n"
      (List.length chaos_expected_coverage)
  | spots -> Printf.printf "\ncoverage BLIND SPOTS: %s\n" (String.concat ", " spots));
  let teeth =
    Experiments.Chaos.check_teeth ~domains ~campaigns:(min campaigns 20) ~length ~seed ()
  in
  Printf.printf "teeth (#18 quorum ack without durable flush): %d/%d campaigns caught it\n"
    teeth (min campaigns 20);
  if summary.Experiments.Chaos.clean = summary.Experiments.Chaos.campaigns && blind = []
     && teeth > 0
  then begin
    Printf.printf "chaos campaign clean\n";
    0
  end
  else 1

(* [--shared]: the racing-domain conformance gate for the shared-state
   store. Four checks, each printing its race-checked access counts as
   coverage evidence: (1) the rwlock protocol model explored exhaustively
   under Smc (mutual exclusion, writer preference, no lost wakeups);
   (2) the sharded hot-path model (per-shard staging, stack lock, cache
   lifecycle) under the FastTrack race monitor and lock-order analysis —
   zero findings required; (3) the real Atomic rwlock hammered by racing
   domains, with its transition trace audited against the protocol spec
   and the protected-register history checked linearizable; (4) N domains
   driving one shared store, every per-key history checked linearizable
   against the sequential register model. *)
(* [--lint-graph FILE]: dump the named lock-class edges the hot-path model
   observed, one "held acquired" pair per line. lib/lint cross-checks this
   against its static acquisition graph: every dynamic edge must appear
   statically, or the extractor is blind to a real code path. *)
let export_lint_graph path reports =
  let edges =
    List.concat_map
      (fun r ->
        let o = r.Conc.Conc_shared.outcome in
        List.filter_map
          (fun (a, b) ->
            match (List.assoc_opt a o.Smc.lock_names, List.assoc_opt b o.Smc.lock_names) with
            | Some na, Some nb -> Some (na, nb)
            | _ -> None)
          o.Smc.lock_edges)
      reports
    |> List.sort_uniq compare
  in
  let oc = open_out path in
  output_string oc "# dynamic lock-order class edges (validate --shared): held acquired\n";
  List.iter (fun (a, b) -> Printf.fprintf oc "%s %s\n" a b) edges;
  close_out oc;
  Printf.printf "  lint-graph: %d class edge(s) -> %s\n" (List.length edges) path

(* The maintenance-racing gates, appended to --shared and also runnable
   on their own as --maint (the CI maint-smoke job): (a) per-key
   linearizability must hold while a dedicated maintenance domain races
   the foreground with narrowed shard flushes, compactions and reclaims;
   (b) a wire-traced run of the same shape (maintenance flushes leaving
   Flush markers) must audit Valid offline. The model-side half — the
   Conc_shared maintenance harnesses under FastTrack — rides in the
   hot-path model gate, which --maint re-runs for its lint-graph
   export. *)
let maint_gates ~gate ~n ~shared_ops ~seed =
  Printf.printf "shared: %d foreground domains + 1 maintenance domain (linearizability)\n" n;
  let lin =
    Experiments.Shared_lin.run ~domains:n ~ops_per_domain:shared_ops ~seed ~maint:true ()
  in
  Format.printf "  %a@." Experiments.Shared_lin.pp_report lin;
  gate "maintenance-racing linearizability" (Experiments.Shared_lin.ok lin);
  Printf.printf "shared: traced maintenance-racing run (offline wire-trace audit)\n";
  let audit, stats = Experiments.Shared_lin.traced_maint ~domains:n ~seed () in
  Format.printf "  %a@." Tracecheck.Audit.pp_report audit;
  Printf.printf "  maint domain: %d steps, %d flushes draining %d, %d compacts, %d reclaims, %d errors\n"
    stats.Store.Shared.Maint.steps stats.Store.Shared.Maint.flushes
    stats.Store.Shared.Maint.drained stats.Store.Shared.Maint.compacts
    stats.Store.Shared.Maint.reclaims stats.Store.Shared.Maint.errors;
  gate "maintenance trace audit"
    (Tracecheck.Audit.ok audit
    && stats.Store.Shared.Maint.errors = 0
    && stats.Store.Shared.Maint.flushes > 0)

let shared_run ~domains ~shared_ops ~seed ~lint_graph =
  Faults.disable_all ();
  let n = if domains > 1 then domains else 4 in
  let failures = ref 0 in
  let gate name ok =
    if not ok then begin
      incr failures;
      Printf.printf "  %s: FAILED\n" name
    end
  in
  Printf.printf "shared: rwlock protocol model (Smc; two-thread harnesses exhaustive)\n";
  let model_reports = Conc.Rwlock.Check.model () in
  List.iter (fun r -> Format.printf "  %a@." Conc.Rwlock.Check.pp_model_report r) model_reports;
  gate "rwlock model" (Conc.Rwlock.Check.model_ok model_reports);
  Printf.printf "shared: sharded hot-path model (FastTrack races + lock order)\n";
  let shared_reports = Conc.Conc_shared.run () in
  List.iter (fun r -> Format.printf "  %a@." Conc.Conc_shared.pp_report r) shared_reports;
  gate "hot-path model" (Conc.Conc_shared.ok shared_reports);
  (match lint_graph with
  | Some path -> export_lint_graph path shared_reports
  | None -> ());
  Printf.printf "shared: real rwlock on %d racing domains (trace audit + linearizability)\n" n;
  let impl_report = Conc.Rwlock.Check.impl ~domains:n ~seed () in
  Format.printf "  %a@." Conc.Rwlock.Check.pp_impl_report impl_report;
  gate "rwlock impl" (Conc.Rwlock.Check.impl_ok impl_report);
  Printf.printf "shared: %d domains x %d ops against one shared store\n" n shared_ops;
  let lin_report = Experiments.Shared_lin.run ~domains:n ~ops_per_domain:shared_ops ~seed () in
  Format.printf "  %a@." Experiments.Shared_lin.pp_report lin_report;
  gate "store linearizability" (Experiments.Shared_lin.ok lin_report);
  maint_gates ~gate ~n ~shared_ops ~seed;
  if !failures = 0 then begin
    Printf.printf "shared-state conformance clean\n";
    0
  end
  else begin
    Printf.printf "shared-state conformance: %d gate(s) failed\n" !failures;
    1
  end

(* [--maint]: the maintenance-plane subset of --shared, small enough for
   a dedicated CI job: the hot-path model (maintenance harnesses
   included, FastTrack attached, dynamic lock-graph export for the
   lint cross-check) plus the two maintenance-racing gates. *)
let maint_run ~domains ~shared_ops ~seed ~lint_graph =
  Faults.disable_all ();
  let n = if domains > 1 then domains else 3 in
  let failures = ref 0 in
  let gate name ok =
    if not ok then begin
      incr failures;
      Printf.printf "  %s: FAILED\n" name
    end
  in
  Printf.printf "maint: hot-path model with maintenance harnesses (FastTrack + lock order)\n";
  let shared_reports = Conc.Conc_shared.run () in
  List.iter (fun r -> Format.printf "  %a@." Conc.Conc_shared.pp_report r) shared_reports;
  gate "hot-path model" (Conc.Conc_shared.ok shared_reports);
  (match lint_graph with
  | Some path -> export_lint_graph path shared_reports
  | None -> ());
  maint_gates ~gate ~n ~shared_ops ~seed;
  if !failures = 0 then begin
    Printf.printf "maintenance-plane conformance clean\n";
    0
  end
  else begin
    Printf.printf "maintenance-plane conformance: %d gate(s) failed\n" !failures;
    1
  end

(* [--trace-audit]: E16 — capture wire traces from non-deterministic runs
   (chaos campaigns with faults armed, racing Store.Shared domains, the
   Rpc.Node request plane) and validate each recorded history offline
   against the per-key linearizable model, plus the teeth suite (forged
   histories and the armed-#18 scenario, all of which must be rejected). *)
let trace_audit_run ~domains ~campaigns ~length ~seed ~shared_ops =
  let summary =
    Experiments.Trace_audit.run ~domains ~campaigns ~length ~seed ~shared_ops ()
  in
  Experiments.Trace_audit.print summary;
  if Experiments.Trace_audit.ok summary then 0 else 1

let run_conformance sequences length seed metrics_out batch_weight scan_weight domains =
  Faults.disable_all ();
  Util.Coverage.reset ();
  let config = Lfm.Harness.default_config in
  (* batch_weight / scan_weight = 0 (the defaults) keep the seed-for-seed
     op streams of a plain sweep; positive weights mix PutBatch/DeleteBatch
     and Scan into every profile's alphabet so the sweep also exercises the
     group-commit and range-scan paths. *)
  let bias = { Lfm.Gen.default_bias with Lfm.Gen.batch_weight; scan_weight } in
  let total_failures = ref 0 in
  List.iter
    (fun profile ->
      let t0 = Util.Wallclock.now_s () in
      (* Sharded across domains, merged in seed order: the failure count and
         the (lowest-seed) first failure are identical for any --domains. *)
      let sw = Lfm.Harness.run_par ~domains config ~profile ~bias ~length ~seed ~count:sequences in
      let failures = sw.Lfm.Harness.failures in
      let dt = Util.Wallclock.now_s () -. t0 in
      Printf.printf "%-12s %6d sequences, %3d failures (%.0f seqs/s)\n"
        (Lfm.Gen.profile_name profile)
        sequences failures
        (float_of_int sequences /. dt);
      (match sw.Lfm.Harness.first_failure with
      | Some (s, ops, f) ->
        Format.printf "  first failure (seed %d): %a@." s Lfm.Harness.pp_failure f;
        let still_fails ops =
          match Lfm.Harness.run config ops with Lfm.Harness.Failed _ -> true | _ -> false
        in
        let minimized, stats = Lfm.Minimize.minimize ~still_fails ops in
        Format.printf "  minimized: %a@." Lfm.Minimize.pp_stats stats;
        List.iteri (fun i op -> Format.printf "    %2d: %a@." i Lfm.Op.pp op) minimized
      | None -> ());
      total_failures := !total_failures + failures)
    [ Lfm.Gen.Crash_free; Lfm.Gen.Crashing; Lfm.Gen.Failing; Lfm.Gen.Full ];
  (* Coverage monitoring (section 4.2): make blind spots visible so new
     functionality that the harness cannot reach is noticed. *)
  Printf.printf "\ncoverage:\n";
  List.iter
    (fun (name, n) -> Printf.printf "  %-40s %d\n" name n)
    (Util.Coverage.snapshot ());
  (* Scan coverage is only expected when scans are actually generated. *)
  let expected_coverage =
    if scan_weight > 0 then expected_coverage @ [ "index.scan" ] else expected_coverage
  in
  (match Util.Coverage.blind_spots ~expected:expected_coverage () with
  | [] -> Printf.printf "  no blind spots among %d expected paths\n" (List.length expected_coverage)
  | spots -> Printf.printf "  BLIND SPOTS: %s\n" (String.concat ", " spots));
  let metrics_ok = metrics_summary config ~bias ~length ~seed metrics_out in
  if !total_failures = 0 && metrics_ok then begin
    Printf.printf "all profiles clean\n";
    0
  end
  else 1

let run sequences length seed metrics_out sanitize batch_weight scan_weight chaos campaigns
    chaos_length domains shared shared_ops lint_graph trace_audit maint =
  if trace_audit then
    trace_audit_run ~domains ~campaigns ~length:chaos_length ~seed ~shared_ops
  else if shared then shared_run ~domains ~shared_ops ~seed ~lint_graph
  else if maint then maint_run ~domains ~shared_ops ~seed ~lint_graph
  else if chaos then chaos_run ~domains ~campaigns ~length:chaos_length ~seed
  else if sanitize then sanitize_run ~seed
  else run_conformance sequences length seed metrics_out batch_weight scan_weight domains

let sequences =
  Arg.(value & opt int 2000 & info [ "sequences"; "n" ] ~doc:"Sequences per profile.")

let length = Arg.(value & opt int 60 & info [ "length" ] ~doc:"Operations per sequence.")
let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Base random seed.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Export the metrics summary as JSONL to $(docv).")

let sanitize =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Run the sanitizer suite instead of the conformance sweep: the vector-clock race \
           detector and lock-order analysis over the known-clean concurrency harnesses, and \
           the page-lifecycle shadow (plus a leaked-extent audit) over put/flush/reclaim \
           workloads. Exit 1 on any finding.")

let batch_weight =
  Arg.(
    value & opt int 0
    & info [ "batch-weight" ]
        ~doc:
          "Relative weight of PutBatch/DeleteBatch ops in the generated alphabet. 0 (default) \
           generates the classic scalar-only streams; a positive weight exercises the batched \
           request plane and group commit.")

let scan_weight =
  Arg.(
    value & opt int 0
    & info [ "scan-weight" ]
        ~doc:
          "Relative weight of Scan ops in the generated alphabet. 0 (default) generates the \
           classic streams; a positive weight drives snapshot range-scan cursors through \
           every profile (and adds index.scan to the expected coverage).")

let chaos =
  Arg.(
    value & flag
    & info [ "chaos" ]
        ~doc:
          "Run the chaos campaign instead of the conformance sweep: seeded randomized \
           workloads against a replicated fleet under disk faults, node crashes and node \
           losses, checking that every acknowledged write stays readable and repair \
           converges. Also asserts the request-plane coverage counters fired and that the \
           checker catches fault #18 (quorum ack without durable flush). Exit 1 on any \
           violation.")

let campaigns =
  Arg.(value & opt int 200 & info [ "campaigns" ] ~doc:"Chaos campaigns to run.")

let chaos_length =
  Arg.(value & opt int 40 & info [ "chaos-length" ] ~doc:"Operations per chaos campaign.")

let domains =
  Arg.(
    value & opt int 1
    & info [ "domains" ]
        ~doc:
          "Shard the conformance sweep and chaos campaigns across $(docv) OCaml domains \
           (lib/par). Results are merged in seed order and are byte-identical to --domains 1 \
           (only the seqs/s and wall-clock figures change). Does not affect --sanitize, whose \
           SMC harnesses are single-domain by design. With --shared this is the number of \
           racing domains (default 4 when left at 1 — a shared-state gate needs contention)."
        ~docv:"N")

let shared =
  Arg.(
    value & flag
    & info [ "shared" ]
        ~doc:
          "Run the shared-state conformance gate instead of the sweep: the rwlock protocol \
           model checked exhaustively under SMC, the sharded hot-path model (maintenance \
           harnesses included) under the FastTrack race detector and lock-order analysis, \
           the real Atomic rwlock audited on racing domains, N domains driving one shared \
           store with every per-key history checked linearizable — then the \
           maintenance-racing gates (see --maint). Exit 1 on any finding.")

let shared_ops =
  Arg.(
    value & opt int 64
    & info [ "shared-ops" ]
        ~doc:"Operations per racing domain in the --shared store workload.")

let lint_graph =
  Arg.(
    value
    & opt (some string) None
    & info [ "lint-graph" ] ~docv:"FILE"
        ~doc:
          "With --shared or --maint: export the dynamically observed lock-class acquisition \
           edges (one 'held acquired' pair per line) for the $(b,lint.exe --dynamic-graph) \
           static/dynamic cross-check.")

let trace_audit =
  Arg.(
    value & flag
    & info [ "trace-audit" ]
        ~doc:
          "Run the wire-trace audit instead of the sweep: record timestamped \
           invocation/response events from non-deterministic runs (chaos campaigns with \
           faults armed, racing domains on one shared store, the RPC request plane with \
           paginated scans) and validate each history offline against the per-key \
           linearizable model. Also runs the teeth suite: forged violation histories and \
           an armed fault-#18 scenario must all be rejected. --campaigns, --chaos-length, \
           --domains, --shared-ops and --seed scale the workloads. Exit 1 if any trace \
           fails its audit or any teeth case goes undetected.")

let maint =
  Arg.(
    value & flag
    & info [ "maint" ]
        ~doc:
          "Run the maintenance-plane conformance gate on its own (it also runs as part of \
           --shared): the sharded hot-path model with the maintenance-vs-foreground \
           harnesses under the FastTrack race detector and lock-order analysis (exporting \
           --lint-graph when asked), N foreground domains racing a dedicated maintenance \
           domain with every per-key history checked linearizable, and a wire-traced run of \
           the same shape audited offline. Exit 1 on any finding.")

let cmd =
  Cmd.v
    (Cmd.info "validate" ~doc:"Run the pre-deployment conformance checks")
    Term.(
      const run $ sequences $ length $ seed $ metrics_out $ sanitize $ batch_weight
      $ scan_weight $ chaos $ campaigns $ chaos_length $ domains $ shared $ shared_ops
      $ lint_graph $ trace_audit $ maint)

let () = exit (Cmd.eval' cmd)
