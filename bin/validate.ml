(* The pre-deployment validation run (paper section 4.2: "we routinely run
   tens of millions of random test sequences before every ShardStore
   deployment"): conformance checking across every profile, scaled by a
   sequence budget. Exit status 1 if any check fails. *)

open Cmdliner

let expected_coverage =
  [
    "cache.hit"; "cache.miss"; "cache.eviction"; "chunk.get.stale_locator";
    "index.get.memtable"; "index.get.run"; "index.run_written"; "index.compact";
    "reclaim.scan.valid_frame"; "reclaim.scan.invalid_frame"; "reclaim.evacuated";
    "reclaim.dropped"; "crash.torn_append"; "superblock.record";
    "superblock.free_claim_withheld"; "store.put.gc_fallback";
  ]

(* Replay one representative mixed sequence and report the unified metrics
   registry it produced — the per-run view that complements the global
   coverage table below. *)
let metrics_summary config ~length ~seed metrics_out =
  let rng = Util.Rng.create (Int64.of_int seed) in
  let ops =
    Lfm.Gen.sequence ~rng ~bias:Lfm.Gen.default_bias ~profile:Lfm.Gen.Full
      ~page_size:config.Lfm.Harness.store_config.Lfm.Harness.S.disk.Disk.page_size
      ~extent_count:config.Lfm.Harness.store_config.Lfm.Harness.S.disk.Disk.extent_count
      ~length
  in
  let store = Lfm.Harness.replay config ops in
  let obs = Lfm.Harness.S.obs store in
  Format.printf "@.metrics (one %d-op full-profile sequence):@.%a@." length Obs.pp_snapshot obs;
  match metrics_out with
  | None -> true
  | Some path -> (
    match open_out path with
    | oc ->
      output_string oc (Obs.to_jsonl obs);
      close_out oc;
      Printf.printf "metrics written to %s\n" path;
      true
    | exception Sys_error msg ->
      Printf.eprintf "validate: cannot write metrics: %s\n" msg;
      false)

let run sequences length seed metrics_out =
  Faults.disable_all ();
  Util.Coverage.reset ();
  let config = Lfm.Harness.default_config in
  let total_failures = ref 0 in
  List.iter
    (fun profile ->
      let t0 = Unix.gettimeofday () in
      let failures = ref 0 in
      let first = ref None in
      for i = 0 to sequences - 1 do
        let ops, outcome =
          Lfm.Harness.run_seed config ~profile ~bias:Lfm.Gen.default_bias ~length
            ~seed:(seed + i)
        in
        match outcome with
        | Lfm.Harness.Passed -> ()
        | Lfm.Harness.Failed f ->
          incr failures;
          if !first = None then first := Some (seed + i, ops, f)
      done;
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "%-12s %6d sequences, %3d failures (%.0f seqs/s)\n"
        (Lfm.Gen.profile_name profile)
        sequences !failures
        (float_of_int sequences /. dt);
      (match !first with
      | Some (s, ops, f) ->
        Format.printf "  first failure (seed %d): %a@." s Lfm.Harness.pp_failure f;
        let still_fails ops =
          match Lfm.Harness.run config ops with Lfm.Harness.Failed _ -> true | _ -> false
        in
        let minimized, stats = Lfm.Minimize.minimize ~still_fails ops in
        Format.printf "  minimized: %a@." Lfm.Minimize.pp_stats stats;
        List.iteri (fun i op -> Format.printf "    %2d: %a@." i Lfm.Op.pp op) minimized
      | None -> ());
      total_failures := !total_failures + !failures)
    [ Lfm.Gen.Crash_free; Lfm.Gen.Crashing; Lfm.Gen.Failing; Lfm.Gen.Full ];
  (* Coverage monitoring (section 4.2): make blind spots visible so new
     functionality that the harness cannot reach is noticed. *)
  Printf.printf "\ncoverage:\n";
  List.iter
    (fun (name, n) -> Printf.printf "  %-40s %d\n" name n)
    (Util.Coverage.snapshot ());
  (match Util.Coverage.blind_spots ~expected:expected_coverage () with
  | [] -> Printf.printf "  no blind spots among %d expected paths\n" (List.length expected_coverage)
  | spots -> Printf.printf "  BLIND SPOTS: %s\n" (String.concat ", " spots));
  let metrics_ok = metrics_summary config ~length ~seed metrics_out in
  if !total_failures = 0 && metrics_ok then begin
    Printf.printf "all profiles clean\n";
    0
  end
  else 1

let sequences =
  Arg.(value & opt int 2000 & info [ "sequences"; "n" ] ~doc:"Sequences per profile.")

let length = Arg.(value & opt int 60 & info [ "length" ] ~doc:"Operations per sequence.")
let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Base random seed.")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Export the metrics summary as JSONL to $(docv).")

let cmd =
  Cmd.v
    (Cmd.info "validate" ~doc:"Run the pre-deployment conformance checks")
    Term.(const run $ sequences $ length $ seed $ metrics_out)

let () = exit (Cmd.eval' cmd)
