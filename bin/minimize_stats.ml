(* Experiment E3: raw vs minimized counterexample sizes (the section 4.3
   anecdote). *)

open Cmdliner

let run domains samples seed =
  Experiments.Minimize_stats.print
    (Experiments.Minimize_stats.run ~domains ~samples_per_fault:samples ~seed ());
  0

let domains =
  Arg.(
    value & opt int 1
    & info [ "domains" ]
        ~doc:
          "Shard each detection hunt across $(docv) OCaml domains (lib/par). Results are \
           byte-identical to --domains 1.")

let samples =
  Arg.(value & opt int 5 & info [ "samples" ] ~doc:"Counterexamples per fault.")

let seed = Arg.(value & opt int 7000 & info [ "seed" ] ~doc:"Base random seed.")

let cmd =
  Cmd.v
    (Cmd.info "minimize_stats" ~doc:"Reproduce the test-case minimization statistics")
    Term.(const run $ domains $ samples $ seed)

let () = exit (Cmd.eval' cmd)
