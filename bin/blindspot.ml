(* Experiment E9: the missed cache-miss bug and the coverage metrics that
   motivated section 4.2's coverage work (section 8.3). *)

open Cmdliner

let run budget seed =
  Experiments.Blindspot.print (Experiments.Blindspot.run ~max_sequences:budget ~seed ());
  0

let budget = Arg.(value & opt int 600 & info [ "budget" ] ~doc:"Sequence budget per arm.")
let seed = Arg.(value & opt int 77000 & info [ "seed" ] ~doc:"Base random seed.")

let cmd =
  Cmd.v
    (Cmd.info "blindspot" ~doc:"Reproduce the section 8.3 missed-bug / coverage experiment")
    Term.(const run $ budget $ seed)

let () = exit (Cmd.eval' cmd)
