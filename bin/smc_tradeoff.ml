(* Experiment E8: DFS vs randomized strategies on the concurrency
   harnesses (the Loom-vs-Shuttle trade-off of section 6). *)

open Cmdliner

let run trials budget seed =
  Experiments.Smc_tradeoff.print
    (Experiments.Smc_tradeoff.run ~trials ~schedule_budget:budget ~seed ());
  0

let trials = Arg.(value & opt int 5 & info [ "trials" ] ~doc:"Trials per strategy.")
let budget = Arg.(value & opt int 100000 & info [ "budget" ] ~doc:"Schedule budget per trial.")
let seed = Arg.(value & opt int 3000 & info [ "seed" ] ~doc:"Base random seed.")

let cmd =
  Cmd.v
    (Cmd.info "smc_tradeoff" ~doc:"Reproduce the stateless model checking trade-off study")
    Term.(const run $ trials $ budget $ seed)

let () = exit (Cmd.eval' cmd)
