(* Experiment E4: coarse vs block-level crash-state enumeration. *)

open Cmdliner

let run domains max_sequences throughput seed =
  Experiments.Crash_modes.print
    (Experiments.Crash_modes.run ~domains ~max_sequences ~throughput_sequences:throughput
       ~seed ());
  0

let domains =
  Arg.(
    value & opt int 1
    & info [ "domains" ]
        ~doc:
          "Shard each detection hunt across $(docv) OCaml domains (lib/par). Results are \
           byte-identical to --domains 1.")

let max_sequences =
  Arg.(value & opt int 3000 & info [ "budget" ] ~doc:"Detection budget per fault and mode.")

let throughput =
  Arg.(value & opt int 400 & info [ "throughput" ] ~doc:"Sequences for the throughput runs.")

let seed = Arg.(value & opt int 1234 & info [ "seed" ] ~doc:"Base random seed.")

let cmd =
  Cmd.v
    (Cmd.info "crash_modes" ~doc:"Reproduce the coarse vs block-level crash-state comparison")
    Term.(const run $ domains $ max_sequences $ throughput $ seed)

let () = exit (Cmd.eval' cmd)
