(* Experiment E4: coarse vs block-level crash-state enumeration. *)

open Cmdliner

let run max_sequences throughput seed =
  Experiments.Crash_modes.print
    (Experiments.Crash_modes.run ~max_sequences ~throughput_sequences:throughput ~seed ());
  0

let max_sequences =
  Arg.(value & opt int 3000 & info [ "budget" ] ~doc:"Detection budget per fault and mode.")

let throughput =
  Arg.(value & opt int 400 & info [ "throughput" ] ~doc:"Sequences for the throughput runs.")

let seed = Arg.(value & opt int 1234 & info [ "seed" ] ~doc:"Base random seed.")

let cmd =
  Cmd.v
    (Cmd.info "crash_modes" ~doc:"Reproduce the coarse vs block-level crash-state comparison")
    Term.(const run $ max_sequences $ throughput $ seed)

let () = exit (Cmd.eval' cmd)
