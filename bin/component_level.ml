(* Experiment E10: component-level vs end-to-end checking (section 8.4). *)

open Cmdliner

let run domains trials budget seed =
  Experiments.Component_level.print
    (Experiments.Component_level.run ~domains ~trials ~max_sequences:budget ~seed ());
  0

let domains =
  Arg.(
    value & opt int 1
    & info [ "domains" ]
        ~doc:
          "Shard each hunt across $(docv) OCaml domains (lib/par). Results are \
           byte-identical to --domains 1.")

let trials = Arg.(value & opt int 10 & info [ "trials" ] ~doc:"Hunts per fault and level.")
let budget = Arg.(value & opt int 2000 & info [ "budget" ] ~doc:"Sequence budget per hunt.")
let seed = Arg.(value & opt int 64000 & info [ "seed" ] ~doc:"Base random seed.")

let cmd =
  Cmd.v
    (Cmd.info "component_level" ~doc:"Reproduce the component-level vs end-to-end comparison")
    Term.(const run $ domains $ trials $ budget $ seed)

let () = exit (Cmd.eval' cmd)
