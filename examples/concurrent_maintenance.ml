(* The paper's Fig. 4 harness, live: read-after-write consistency of the
   index under concurrent chunk reclamation and LSM compaction, checked by
   exhaustive DFS (the Loom analogue) and randomized PCT (the Shuttle
   analogue).

   Run with: dune exec examples/concurrent_maintenance.exe *)

let fig4 () =
  let index = Conc.Conc_index.create () in
  Conc.Conc_index.put index ~key:1 ~value:10;
  Conc.Conc_index.put index ~key:2 ~value:20;
  Conc.Conc_index.compact index;
  let done_ = Smc.Cell.make 0 in
  Smc.spawn (fun () ->
      Conc.Conc_index.reclaim index ~extent:0;
      ignore (Smc.Cell.update done_ (fun d -> d + 1)));
  Smc.spawn (fun () ->
      Conc.Conc_index.compact index;
      ignore (Smc.Cell.update done_ (fun d -> d + 1)));
  Smc.spawn (fun () ->
      Conc.Conc_index.put index ~key:1 ~value:11;
      (match Conc.Conc_index.get index ~key:1 with
      | Some 11 -> ()
      | Some v -> failwith (Printf.sprintf "read-after-write broken: got %d" v)
      | None -> failwith "read-after-write broken: entry lost");
      ignore (Smc.Cell.update done_ (fun d -> d + 1)));
  Smc.wait_until (fun () -> Smc.Cell.peek done_ = 3)

let show label outcome = Format.printf "%-34s %a@." label Smc.pp_outcome outcome

let () =
  print_endline "Fig. 4: index read-after-write under concurrent maintenance\n";
  print_endline "-- correct implementation (compaction locks the extent) --";
  Faults.disable_all ();
  show "DFS (sound, Loom-style):" (Smc.explore (Smc.Dfs { max_schedules = 60_000 }) fig4);
  show "PCT (randomized, Shuttle-style):"
    (Smc.explore (Smc.Pct { seed = 1; schedules = 5_000; depth = 3 }) fig4);

  print_endline "\n-- issue #14 injected (no extent lock) --";
  Faults.enable Faults.F14_compaction_reclaim_race;
  show "DFS:" (Smc.explore (Smc.Dfs { max_schedules = 60_000 }) fig4);
  show "PCT:" (Smc.explore (Smc.Pct { seed = 1; schedules = 50_000; depth = 3 }) fig4);
  Faults.disable_all ();
  print_endline "\nThe interleaving matches the paper's narrative: compaction writes the";
  print_endline "new chunk, reclamation preempts it, finds the chunk unreferenced by the";
  print_endline "metadata, drops it and resets the extent - losing the flushed entries."
