(* The developer loop the paper describes: write a feature, run the
   conformance checks locally before sending for code review (section 5:
   "the developer was able to run property-based tests locally and
   discover this issue before even submitting for code review").

   This example runs a small validation pass over every profile and prints
   what each one checks.

   Run with: dune exec examples/validate_node.exe *)

let () =
  Faults.disable_all ();
  let config = Lfm.Harness.default_config in
  let sequences = 400 in
  Printf.printf
    "Conformance checking ShardStore against its reference model\n\
     (%d random sequences of 60 operations per profile)\n\n" sequences;
  List.iter
    (fun (profile, what) ->
      let t0 = Unix.gettimeofday () in
      let failures = ref 0 in
      for i = 0 to sequences - 1 do
        let _, outcome =
          Lfm.Harness.run_seed config ~profile ~bias:Lfm.Gen.default_bias ~length:60
            ~seed:(100_000 + i)
        in
        match outcome with Lfm.Harness.Passed -> () | Lfm.Harness.Failed _ -> incr failures
      done;
      Printf.printf "%-12s %-58s %s (%.1fs)\n"
        (Lfm.Gen.profile_name profile)
        what
        (if !failures = 0 then "PASS" else Printf.sprintf "FAIL (%d)" !failures)
        (Unix.gettimeofday () -. t0))
    [
      (Lfm.Gen.Crash_free, "sequential equivalence with the hash-map model (S4)");
      (Lfm.Gen.Crashing, "persistence + forward progress across dirty reboots (S5)");
      (Lfm.Gen.Failing, "the has-failed relaxation under injected IO errors (S4.4)");
      (Lfm.Gen.Full, "everything at once");
    ];
  Printf.printf "\nAnd the concurrency checks (stateless model checking, S6):\n";
  List.iter
    (fun fault ->
      let outcome =
        Conc.Conc_detect.check_correct (Smc.Dfs { max_schedules = 50_000 }) fault
      in
      Printf.printf "  %-28s %s\n"
        (Faults.component fault ^ " harness")
        (match outcome.Smc.violation with
        | None ->
          Printf.sprintf "PASS (%d schedules%s)" outcome.Smc.schedules_run
            (if outcome.Smc.exhausted then ", exhaustive" else "")
        | Some v -> Format.asprintf "FAIL: %a" Smc.pp_violation v))
    [
      Faults.F11_locator_race;
      Faults.F12_buffer_pool_deadlock;
      Faults.F13_list_remove_race;
      Faults.F14_compaction_reclaim_race;
      Faults.F16_bulk_create_remove_race;
    ];
  print_endline "\ndone."
