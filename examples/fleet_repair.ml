(* The layer above the paper: a replicated fleet of storage nodes, where
   single-node crash consistency pays off as reduced repair traffic
   (section 2.2) — S3's eleven-nines durability comes from replication,
   repaired by the control plane.

   Run with: dune exec examples/fleet_repair.exe *)

let ok = function
  | Ok v -> v
  | Error e -> Format.kasprintf failwith "fleet error: %a" Fleet.pp_error e

let () =
  let fleet = Fleet.create Fleet.default_config in
  Printf.printf "fleet of %d nodes, replication factor %d\n\n" (Fleet.node_count fleet)
    Fleet.default_config.Fleet.replication;

  print_endline "storing 40 shards (each put is acknowledged only once durable on";
  print_endline "every replica):";
  for i = 0 to 39 do
    ignore
      (ok (Fleet.put fleet ~key:(Printf.sprintf "shard-%02d" i) ~value:(String.make 2048 'd')))
  done;
  Printf.printf "  shard-07 placed on nodes [%s], %d live replicas\n\n"
    (String.concat "; " (List.map string_of_int (Fleet.placement fleet "shard-07")))
    (Fleet.replica_count fleet ~key:"shard-07");

  print_endline "a node crashes (power loss) and recovers crash-consistently:";
  let rng = Util.Rng.create 42L in
  Fleet.crash_node fleet ~rng ~node:0;
  let r = ok (Fleet.repair fleet) in
  Printf.printf "  repair after crash: %d shards re-replicated, %d bytes moved\n\n"
    r.Fleet.shards_repaired r.Fleet.bytes_moved;

  print_endline "a node is lost entirely (disk replacement):";
  Fleet.destroy_node fleet ~node:0;
  let r = ok (Fleet.repair fleet) in
  Printf.printf "  repair after loss:  %d shards re-replicated, %d bytes moved\n\n"
    r.Fleet.shards_repaired r.Fleet.bytes_moved;

  Printf.printf "shard-07 after all of it: %s\n"
    (match ok (Fleet.get fleet ~key:"shard-07") with
    | Some v -> Printf.sprintf "%d bytes intact" (String.length v)
    | None -> "LOST");
  print_endline "\nthis is the paper's section 2.2 in numbers: crash consistency is not";
  print_endline "about single-node durability (replication covers that) but about not";
  print_endline "flooding the fleet with repair traffic every time a node reboots."
