(* Seed one of the paper's Figure 5 defects and watch the checkers find
   and minimize it — the experience reports of sections 5 and 6.

   Run with: dune exec examples/bug_hunt.exe            (defaults to issue #3)
             dune exec examples/bug_hunt.exe -- 7       (pick an issue)   *)

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 3
  in
  let fault =
    match Faults.of_number n with
    | Some f -> f
    | None -> failwith "issue number must be 1..16"
  in
  Printf.printf "Hunting issue #%d: %s — %s\n" n (Faults.component fault)
    (Faults.description fault);
  Printf.printf "checker: %s\n\n" (Lfm.Detect.method_name (Lfm.Detect.method_for fault));
  match Lfm.Detect.method_for fault with
  | Lfm.Detect.Smc ->
    let outcome =
      Conc.Conc_detect.detect (Smc.Dfs { max_schedules = 200_000 }) fault
    in
    (match outcome.Smc.violation with
    | Some v ->
      Format.printf "DETECTED: %a@." Smc.pp_violation v;
      Format.printf "replaying the schedule reproduces it: %b@."
        (match Conc.Conc_detect.harness fault with
        | Some h ->
          Faults.enable fault;
          let r = Smc.replay h v.Smc.schedule <> None in
          Faults.disable fault;
          r
        | None -> false)
    | None -> Format.printf "not found in %d schedules@." outcome.Smc.schedules_run)
  | _ -> (
    let budget = if fault = Faults.F10_uuid_magic_collision then 60_000 else 5_000 in
    let r = Lfm.Detect.detect ~max_sequences:budget ~minimize:true ~seed:4242 fault in
    if not r.Lfm.Detect.found then
      Printf.printf "not found within %d sequences — try a bigger budget\n" r.Lfm.Detect.sequences
    else begin
      Printf.printf "DETECTED after %d random sequences (%d operations total)\n"
        r.Lfm.Detect.sequences r.Lfm.Detect.total_ops;
      (match r.Lfm.Detect.failure with
      | Some f -> Format.printf "failure: %a@." Lfm.Harness.pp_failure f
      | None -> ());
      match r.Lfm.Detect.original, r.Lfm.Detect.minimized, r.Lfm.Detect.minimized_ops with
      | Some o, Some m, Some ops ->
        Format.printf "@.counterexample: %a@.minimized to:   %a@.@." Lfm.Op.pp_summary o
          Lfm.Op.pp_summary m;
        Printf.printf "the minimized sequence (rerun it as a unit test):\n";
        List.iteri (fun i op -> Format.printf "  %2d: %a@." i Lfm.Op.pp op) ops
      | _ -> ()
    end)
