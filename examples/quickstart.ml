(* Quickstart: a single-disk ShardStore node — puts, gets, dependency
   polling, crash consistency in action.

   Run with: dune exec examples/quickstart.exe *)

module S = Store.Default

let ok = function
  | Ok v -> v
  | Error e -> Format.kasprintf failwith "store error: %a" S.pp_error e

let show label = Printf.printf "== %s\n" label

let () =
  show "create a store and write some shards";
  let store = S.create S.default_config in
  let dep = ok (S.put store ~key:"shard-0x13" ~value:"customer object data") in
  ignore (ok (S.put store ~key:"shard-0x28" ~value:(String.make 20_000 'x')));

  (* Reads are served from the volatile view immediately... *)
  Printf.printf "get shard-0x13 -> %S\n" (Option.get (ok (S.get store ~key:"shard-0x13")));

  (* ...but the put is not durable yet: its soft-updates dependency is
     still pending (the index entry and superblock record have not been
     written back). *)
  Printf.printf "dependency persistent right after put? %b\n" (Dep.is_persistent dep);

  show "flush and poll the dependency";
  ignore (ok (S.flush_index store));
  ignore (ok (S.flush_superblock store));
  ignore (S.pump store 1_000);
  Printf.printf "dependency persistent after flush?    %b\n" (Dep.is_persistent dep);

  show "crash! (dirty reboot that drops everything volatile)";
  let dep2 = ok (S.put store ~key:"shard-0x99" ~value:"staged but never flushed") in
  let rng = Util.Rng.create 1L in
  ok
    (S.dirty_reboot store ~rng
       {
         S.flush_index_first = false;
         flush_superblock_first = false;
         persist_probability = 0.0;
         split_pages = false;
       });
  Printf.printf "shard-0x13 after crash (was durable):    %s\n"
    (match ok (S.get store ~key:"shard-0x13") with Some v -> Printf.sprintf "%S" v | None -> "LOST");
  Printf.printf "shard-0x99 after crash (never flushed):  %s\n"
    (match ok (S.get store ~key:"shard-0x99") with Some v -> Printf.sprintf "%S" v | None -> "lost (allowed: dependency was not persistent)");
  Printf.printf "shard-0x99 dependency reports: persistent=%b failed=%b\n"
    (Dep.is_persistent dep2) (Dep.has_failed dep2);

  show "garbage collection";
  for i = 0 to 9 do
    ignore (ok (S.put store ~key:"churn" ~value:(String.make 4_000 (Char.chr (48 + i)))))
  done;
  ignore (ok (S.flush_index store));
  (match S.reclaimable_extents store with
  | (extent, garbage) :: _ ->
    Printf.printf "most reclaimable extent: %d (%d garbage bytes)\n" extent garbage;
    (match ok (S.reclaim store ()) with
    | Some _ -> Printf.printf "reclaimed; churn still reads back %d bytes\n"
                  (String.length (Option.get (ok (S.get store ~key:"churn"))))
    | None -> Printf.printf "nothing to reclaim\n")
  | [] -> Printf.printf "no garbage yet\n");

  show "clean shutdown: forward progress";
  let dep3 = ok (S.put store ~key:"final" ~value:"write") in
  ok (S.clean_shutdown store);
  Printf.printf "dependency of the final put persistent after clean shutdown: %b\n"
    (Dep.is_persistent dep3);
  ok (S.recover store);
  Printf.printf "keys after recovery: [%s]\n" (String.concat "; " (ok (S.list store)));
  print_endline "done."
