(* A multi-disk storage node behind the RPC interface: steering, the wire
   protocol, and control-plane disk removal/return (paper section 2.1).

   Run with: dune exec examples/multi_disk_node.exe *)

let send node req =
  (* round-trip through the wire format, as a remote client would *)
  let bytes = Rpc.Message.encode_request req in
  let resp_bytes = Rpc.Node.handle_wire node bytes in
  match Rpc.Message.decode_response resp_bytes with
  | Ok resp ->
    Format.printf "  %-28s -> %a@." (Format.asprintf "%a" Rpc.Message.pp_request req)
      Rpc.Message.pp_response resp;
    resp
  | Error e -> Format.kasprintf failwith "bad response: %a" Util.Codec.pp_error e

let () =
  let node = Rpc.Node.create ~disks:4 Store.Default.default_config in
  Printf.printf "node with %d disks (each an isolated failure domain)\n\n"
    (Rpc.Node.disk_count node);

  print_endline "request plane:";
  ignore (send node (Rpc.Message.Put { key = "shard-a"; value = "alpha" }));
  ignore (send node (Rpc.Message.Put { key = "shard-b"; value = "beta" }));
  ignore (send node (Rpc.Message.Put { key = "shard-c"; value = "gamma" }));
  ignore (send node (Rpc.Message.Get { key = "shard-b" }));
  ignore (send node Rpc.Message.List);

  Printf.printf "\nsteering: shard-a -> disk %d, shard-b -> disk %d, shard-c -> disk %d\n\n"
    (Rpc.Node.disk_of_key node "shard-a")
    (Rpc.Node.disk_of_key node "shard-b")
    (Rpc.Node.disk_of_key node "shard-c");

  print_endline "control plane (repair: take a disk out of service and bring it back):";
  let disk = Rpc.Node.disk_of_key node "shard-b" in
  ignore (send node (Rpc.Message.Remove_disk { disk }));
  ignore (send node (Rpc.Message.Get { key = "shard-b" }));
  ignore (send node Rpc.Message.List);
  ignore (send node (Rpc.Message.Return_disk { disk }));
  ignore (send node (Rpc.Message.Get { key = "shard-b" }));

  print_endline "\nmaintenance tick + stats:";
  let report = Rpc.Node.tick node in
  Printf.printf "  tick: %d disks, %d errors, %d IOs pumped\n" report.Rpc.Node.disks
    report.Rpc.Node.errors report.Rpc.Node.ios_pumped;
  ignore (send node Rpc.Message.Node_stats);
  ignore (send node (Rpc.Message.Bulk_delete { keys = [ "shard-a"; "shard-c" ] }));
  ignore (send node Rpc.Message.List);

  print_endline "\na corrupt request cannot crash the node (total deserializers, S7):";
  let resp = Rpc.Node.handle_wire node "\xDE\xAD\xBE\xEF garbage" in
  (match Rpc.Message.decode_response resp with
  | Ok r -> Format.printf "  garbage bytes -> %a@." Rpc.Message.pp_response r
  | Error _ -> ());
  print_endline "done."
