(* Reproduce the paper's Figure 2: the runtime dependency graph of three
   put operations, printed from the IO scheduler's pending writes before
   any writeback happens.

   Each put's graph follows the paper's pattern: the shard data chunk, the
   index entry (inside an LSM run chunk) that depends on it, the LSM-tree
   metadata record that depends on the run, and the superblock record
   carrying the soft write pointer updates.

   Run with: dune exec examples/dependency_graph.exe *)

module S = Store.Default

let ok = function
  | Ok v -> v
  | Error e -> Format.kasprintf failwith "store error: %a" S.pp_error e

let role extent =
  match extent with
  | 0 | 1 -> "superblock"
  | 2 | 3 -> "LSM metadata"
  | _ -> Printf.sprintf "data extent %d" extent

let () =
  (* Disable background writeback so the whole graph stays visible. *)
  let store = S.create { S.default_config with S.auto_pump = 0 } in
  let sched = S.sched store in

  print_endline "Three puts (paper Fig. 2): two small shards, one large.";
  ignore (ok (S.put store ~key:"shard-1" ~value:(String.make 300 'a')));
  ignore (ok (S.put store ~key:"shard-2" ~value:(String.make 300 'b')));
  ignore (ok (S.put store ~key:"shard-3" ~value:(String.make 20_000 'c')));

  (* Flush the index (run chunk + metadata record) and the superblock
     (soft write pointer record) so the whole graph is staged. *)
  ignore (ok (S.flush_index store));
  ignore (ok (S.flush_superblock store));

  Printf.printf "\n%d writes pending; the dependency graph:\n\n"
    (Io_sched.pending_count sched);
  List.iter
    (fun (w : Dep.write) ->
      let kind =
        match w.Dep.kind with
        | Dep.Append { off; data } -> Printf.sprintf "append %4d B @ %-4d" (String.length data) off
        | Dep.Reset { epoch } -> Printf.sprintf "reset (epoch %d)" epoch
      in
      let inputs =
        match Dep.writes w.Dep.input with
        | [] -> "-"
        | ws -> String.concat ", " (List.map (fun w' -> Printf.sprintf "w%d" w'.Dep.id) ws)
      in
      Printf.printf "  w%-3d %-22s on %-14s <- depends on: %s\n" w.Dep.id kind (role w.Dep.extent)
        inputs)
    (Io_sched.pending_writes sched);

  print_endline "\nReading the graph (compare with the paper's Fig. 2):";
  print_endline "  - shard data chunks have no input dependencies;";
  print_endline "  - the LSM run chunk (the index entries) depends on every data chunk it";
  print_endline "    references, so a durable index never points at non-durable data;";
  print_endline "  - the LSM metadata record depends on the run chunk;";
  print_endline "  - the superblock record carries the soft-pointer updates; every put's";
  print_endline "    returned dependency includes it through the cadence promise.";

  (* Show the writeback respecting the graph: pump one IO at a time. *)
  print_endline "\nWriteback order (dependencies respected, randomized otherwise):";
  let rec pump_all step =
    let before = Io_sched.pending_count sched in
    if before > 0 then begin
      ignore (Io_sched.pump ~max_ios:1 sched);
      if Io_sched.pending_count sched < before then Printf.printf "  io %d issued\n" step;
      pump_all (step + 1)
    end
  in
  pump_all 1;
  print_endline "done."
